package wire

import (
	"bytes"
	"reflect"
	"testing"
)

func TestProfileReqRoundTrip(t *testing.T) {
	in := ProfileReq{CaptureID: 42, Kind: 3, Steps: 8, Seconds: 2.5, TraceHi: 11, TraceLo: 22}
	out, err := DecodeProfileReq(AppendProfileReq(nil, &in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if *out != in {
		t.Fatalf("round trip mismatch: got %+v want %+v", *out, in)
	}
}

func TestProfileChunkRoundTrip(t *testing.T) {
	in := ProfileChunk{
		CaptureID: 7, AgentID: 3, Kind: 1, Seq: 2, Total: 5,
		RunID: 9, StepStart: 10, StepEnd: 13,
		Data: []byte("profile bytes"),
	}
	out, err := DecodeProfileChunk(AppendProfileChunk(nil, &in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.CaptureID != in.CaptureID || out.AgentID != in.AgentID ||
		out.Kind != in.Kind || out.Seq != in.Seq || out.Total != in.Total ||
		out.RunID != in.RunID || out.StepStart != in.StepStart ||
		out.StepEnd != in.StepEnd || out.Err != "" ||
		!bytes.Equal(out.Data, in.Data) {
		t.Fatalf("round trip mismatch: got %+v want %+v", *out, in)
	}
}

func TestProfileChunkErrRoundTrip(t *testing.T) {
	in := ProfileChunk{CaptureID: 7, AgentID: 3, Kind: 1, Total: 1, Err: "profiler busy"}
	out, err := DecodeProfileChunk(AppendProfileChunk(nil, &in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Err != in.Err || len(out.Data) != 0 {
		t.Fatalf("round trip mismatch: got %+v want %+v", *out, in)
	}
}

func TestProfileArtifactsRoundTrip(t *testing.T) {
	in := []ProfileArtifact{
		{
			ID: 1, AgentID: 2, Kind: 1, Segment: "07-abcdef", Length: 4096,
			RunID: 3, StepStart: 4, StepEnd: 7, TraceHi: 5, TraceLo: 6,
			Verdict: "straggler", Cause: "compute-skew", WallNanos: 1700000000,
		},
		{ID: 2, AgentID: 9, Kind: 4, Segment: "07-001122", Length: 1},
	}
	out, err := DecodeProfileArtifacts(AppendProfileArtifacts(nil, in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", out, in)
	}
}

func TestProfileRequestRoundTrip(t *testing.T) {
	in := ProfileRequest{
		Op: ProfileOpCapture, AgentID: 3,
		Kinds: []uint8{1, 4, 5}, Steps: 6, Seconds: 0.5, Segment: "07-aa",
	}
	out, err := DecodeProfileRequest(AppendProfileRequest(nil, &in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(*out, in) {
		t.Fatalf("round trip mismatch: got %+v want %+v", *out, in)
	}
}

func TestProfileReplyRoundTrip(t *testing.T) {
	in := ProfileReply{
		Err:      "",
		Captures: []uint64{10, 11, 12},
		Pending:  3,
		Artifacts: []ProfileArtifact{
			{ID: 10, AgentID: 1, Kind: 2, Segment: "07-bb", Length: 9},
		},
		Data: []byte{0x1f, 0x8b, 0x08},
	}
	out, err := DecodeProfileReply(AppendProfileReply(nil, &in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(*out, in) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", *out, in)
	}
}

func TestDecodeProfileTruncated(t *testing.T) {
	// Every truncation of a valid payload must error, never panic.
	full := AppendProfileChunk(nil, &ProfileChunk{
		CaptureID: 7, AgentID: 3, Kind: 1, Seq: 0, Total: 2, Data: []byte("abcdef"),
	})
	for i := 0; i < len(full); i++ {
		if _, err := DecodeProfileChunk(full[:i]); err == nil {
			t.Fatalf("truncation at %d decoded without error", i)
		}
	}
	fullReq := AppendProfileRequest(nil, &ProfileRequest{
		Op: ProfileOpCapture, Kinds: []uint8{1, 2}, Segment: "x",
	})
	for i := 0; i < len(fullReq); i++ {
		if _, err := DecodeProfileRequest(fullReq[:i]); err == nil {
			t.Fatalf("request truncation at %d decoded without error", i)
		}
	}
}

func TestProfileFrameTypesNamed(t *testing.T) {
	for _, typ := range []Type{TProfileReq, TProfileChunk, TProfile, TProfileReply} {
		if !typ.Valid() {
			t.Fatalf("type %d is not valid", typ)
		}
		if name := typ.String(); name == "" || name == "unknown" {
			t.Fatalf("type %d has no name", typ)
		}
	}
	if !AckedPush(TProfileReq) {
		t.Fatal("TProfileReq must be acked: a dropped request wedges the capture accounting")
	}
	if AckedPush(TProfileChunk) {
		t.Fatal("TProfileChunk must stay lossy like TMetric")
	}
}

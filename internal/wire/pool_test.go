package wire

import (
	"bytes"
	"testing"
)

func TestFrameRoundTripThroughPool(t *testing.T) {
	payload := []byte("hello graph")
	frame := AppendFrameHeader(GetFrame(64), TVertexMsgs, 0, "inproc://a")
	frame = append(frame, payload...)
	PatchFrameReq(frame, 42)
	if err := FinishFrame(frame); err != nil {
		t.Fatal(err)
	}
	var p Packet
	if err := UnmarshalPacketInto(&p, frame, nil); err != nil {
		t.Fatal(err)
	}
	if p.Type != TVertexMsgs || p.Req != 42 || p.From != "inproc://a" {
		t.Fatalf("header mismatch: %+v", p)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Fatalf("payload mismatch: %q", p.Payload)
	}
	ReleaseFrame(frame)
}

func TestGetFrameRecyclesReleasedBuffers(t *testing.T) {
	// Released frames come back through the size-classed pools with zero
	// length and at least their class capacity.
	f := GetFrame(100)
	if len(f) != 0 || cap(f) < 100 {
		t.Fatalf("GetFrame(100): len=%d cap=%d", len(f), cap(f))
	}
	f = append(f, make([]byte, 300)...)
	ReleaseFrame(f)
	g := GetFrame(100)
	if len(g) != 0 || cap(g) < 100 {
		t.Fatalf("reused frame: len=%d cap=%d", len(g), cap(g))
	}
	ReleaseFrame(g)
	// Oversized buffers (beyond the largest class) are simply dropped.
	ReleaseFrame(make([]byte, (2<<20)+1))
	// Tiny foreign buffers below the smallest class are dropped too.
	ReleaseFrame(make([]byte, 3))
}

func TestFinishFrameRejectsMalformedHeaders(t *testing.T) {
	if err := FinishFrame(nil); err == nil {
		t.Error("nil frame accepted")
	}
	if err := FinishFrame(make([]byte, 5)); err == nil {
		t.Error("truncated frame accepted")
	}
	// fromLen pointing past the end of the frame.
	bad := AppendFrameHeader(nil, TPing, 0, "addr")
	bad = bad[:7] // cut off mid-From
	if err := FinishFrame(bad); err == nil {
		t.Error("frame cut inside From accepted")
	}
}

func TestFromInternerReusesEqualStrings(t *testing.T) {
	var in FromInterner
	a := in.Intern([]byte("inproc://agent-1"))
	b := in.Intern([]byte("inproc://agent-1"))
	if a != b {
		t.Fatal("intern changed value for equal input")
	}
	c := in.Intern([]byte("inproc://agent-2"))
	if c != "inproc://agent-2" {
		t.Fatalf("intern corrupted value: %q", c)
	}
}

// TestAppendVertexMsgBatchAllocs pins the allocation ceiling of the hot
// encode path: appending into a warm pooled frame must not allocate.
func TestAppendVertexMsgBatchAllocs(t *testing.T) {
	batch := &VertexMsgBatch{Step: 7, Msgs: make([]VertexMsg, 256)}
	// Warm the pool with a frame large enough for the batch.
	ReleaseFrame(AppendVertexMsgBatch(GetFrame(8192), batch))
	allocs := testing.AllocsPerRun(100, func() {
		buf := AppendVertexMsgBatch(GetFrame(8192), batch)
		ReleaseFrame(buf)
	})
	if allocs > 0 {
		t.Errorf("pooled AppendVertexMsgBatch allocates %.1f/op, want 0", allocs)
	}
}

// TestDecodeVertexMsgBatchIntoAllocs pins the hot decode path: decoding
// into a warm scratch batch must not allocate.
func TestDecodeVertexMsgBatchIntoAllocs(t *testing.T) {
	data := EncodeVertexMsgBatch(&VertexMsgBatch{Step: 7, Msgs: make([]VertexMsg, 256)})
	var scratch VertexMsgBatch
	if err := DecodeVertexMsgBatchInto(&scratch, data); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := DecodeVertexMsgBatchInto(&scratch, data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("scratch DecodeVertexMsgBatchInto allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkWireAppend(b *testing.B) {
	b.Run("vertex-msg-batch-256", func(b *testing.B) {
		batch := &VertexMsgBatch{Step: 1, Msgs: make([]VertexMsg, 256)}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ReleaseFrame(AppendVertexMsgBatch(GetFrame(8192), batch))
		}
	})
	b.Run("edge-batch-256", func(b *testing.B) {
		batch := &EdgeBatch{Epoch: 3, Changes: make([]EdgeChange, 256)}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ReleaseFrame(AppendEdgeBatch(GetFrame(8192), batch))
		}
	})
	b.Run("full-frame", func(b *testing.B) {
		// The complete send-side frame build: header + payload + finish.
		batch := &VertexMsgBatch{Step: 1, Msgs: make([]VertexMsg, 256)}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f := AppendFrameHeader(GetFrame(8192), TVertexMsgs, 0, "inproc://bench")
			f = AppendVertexMsgBatch(f, batch)
			if err := FinishFrame(f); err != nil {
				b.Fatal(err)
			}
			ReleaseFrame(f)
		}
	})
}

package wire

import (
	"fmt"
	"time"

	"elga/internal/trace"
)

// SpanBatch is the payload of TSpanBatch: a participant's completed,
// sampled spans on their way to the coordinator's collector. Proc names
// the participant the spans belong to ("agent-3", "dir-0", "client") so
// the timeline can lane them per process.
type SpanBatch struct {
	Proc  string
	Spans []trace.SpanRecord
}

// AppendSpanBatch appends a span-batch payload to dst.
func AppendSpanBatch(dst []byte, b *SpanBatch) []byte {
	w := Writer{buf: dst}
	w.Str(b.Proc)
	w.U32(uint32(len(b.Spans)))
	for i := range b.Spans {
		s := &b.Spans[i]
		w.U64(s.TraceHi)
		w.U64(s.TraceLo)
		w.U64(s.SpanID)
		w.U64(s.Parent)
		w.U32(s.RunID)
		w.U32(s.Step)
		w.U8(s.Flags)
		w.Str(s.Name)
		w.U64(uint64(s.Start))
		w.U64(uint64(s.Dur))
	}
	return w.buf
}

// EncodeSpanBatch serializes a span-batch payload.
func EncodeSpanBatch(b *SpanBatch) []byte { return AppendSpanBatch(nil, b) }

// DecodeSpanBatch parses a span-batch payload. Spans are materialized
// copies; they outlive the frame.
func DecodeSpanBatch(data []byte) (*SpanBatch, error) {
	r := NewReader(data)
	b := &SpanBatch{Proc: r.Str()}
	n := int(r.U32())
	if r.Err() == nil && n >= 0 {
		b.Spans = make([]trace.SpanRecord, 0, capHint(n))
		for i := 0; i < n && r.Err() == nil; i++ {
			b.Spans = append(b.Spans, trace.SpanRecord{
				TraceHi: r.U64(), TraceLo: r.U64(),
				SpanID: r.U64(), Parent: r.U64(),
				RunID: r.U32(), Step: r.U32(), Flags: r.U8(),
				Name: r.Str(), Start: int64(r.U64()), Dur: time.Duration(r.U64()),
			})
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("decode span batch: %w", err)
	}
	return b, nil
}

package wire

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"elga/internal/graph"
)

func TestTypeString(t *testing.T) {
	if TEdges.String() != "edges" || TAck.String() != "ack" {
		t.Error("type names wrong")
	}
	if !strings.Contains(Type(200).String(), "200") {
		t.Error("unknown type name should include the number")
	}
	if TInvalid.Valid() || Type(250).Valid() {
		t.Error("invalid types reported valid")
	}
	if !TQuery.Valid() {
		t.Error("TQuery should be valid")
	}
}

func TestPacketRoundTrip(t *testing.T) {
	p := &Packet{Type: TEdges, Req: 42, From: "inproc://agent-1", Payload: []byte{1, 2, 3}}
	data, err := MarshalPacket(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPacket(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != p.Type || got.Req != p.Req || got.From != p.From || !bytes.Equal(got.Payload, p.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, p)
	}
}

func TestPacketEmptyPayload(t *testing.T) {
	p := &Packet{Type: TPing, From: "x"}
	data, err := MarshalPacket(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPacket(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != 0 {
		t.Error("payload should be empty")
	}
}

func TestMarshalRejectsInvalidType(t *testing.T) {
	if _, err := MarshalPacket(&Packet{Type: TInvalid}); err == nil {
		t.Error("TInvalid accepted")
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	good, _ := MarshalPacket(&Packet{Type: TPing, From: "abc", Payload: []byte{9}})
	cases := [][]byte{
		nil,
		good[:5],
		good[:len(good)-1],
		append(append([]byte{}, good...), 7),
		{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // type 0
	}
	for i, c := range cases {
		if _, err := UnmarshalPacket(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestWriterReaderPrimitives(t *testing.T) {
	var w Writer
	w.U8(7)
	w.Bool(true)
	w.Bool(false)
	w.U32(0xdeadbeef)
	w.U64(1 << 60)
	w.F64(3.25)
	w.Str("hello")
	w.Blob([]byte{1, 2})
	r := NewReader(w.Bytes())
	if r.U8() != 7 || !r.Bool() || r.Bool() {
		t.Fatal("u8/bool")
	}
	if r.U32() != 0xdeadbeef || r.U64() != 1<<60 {
		t.Fatal("ints")
	}
	if r.F64() != 3.25 {
		t.Fatal("f64")
	}
	if r.Str() != "hello" {
		t.Fatal("str")
	}
	if !bytes.Equal(r.Blob(), []byte{1, 2}) {
		t.Fatal("blob")
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", r.Err(), r.Remaining())
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1})
	_ = r.U64() // short
	if r.Err() == nil {
		t.Fatal("short read not detected")
	}
	if r.U8() != 0 || r.Str() != "" || r.Blob() != nil {
		t.Error("reads after error should return zero values")
	}
}

func TestViewRoundTrip(t *testing.T) {
	v := &View{
		Epoch: 5, BatchID: 9, N: 1000,
		Agents: []AgentInfo{{1, "a"}, {2, "b"}},
		Sketch: []byte{1, 2, 3, 4},
	}
	got, err := DecodeView(EncodeView(v))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 5 || got.BatchID != 9 || got.N != 1000 || len(got.Agents) != 2 ||
		got.Agents[1].Addr != "b" || !bytes.Equal(got.Sketch, v.Sketch) {
		t.Fatalf("view mismatch: %+v", got)
	}
}

func TestViewEmptyAgents(t *testing.T) {
	got, err := DecodeView(EncodeView(&View{Epoch: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Agents) != 0 {
		t.Error("agents should be empty")
	}
}

func TestEdgeBatchRoundTrip(t *testing.T) {
	b := &EdgeBatch{
		Epoch: 3, Migration: true,
		Changes: []EdgeChange{
			{Action: graph.Insert, Src: 1, Dst: 2, Dir: graph.Out},
			{Action: graph.Delete, Src: 3, Dst: 4, Dir: graph.In},
		},
	}
	b.States = []VertexState{{Vertex: 9, State: 101}}
	got, err := DecodeEdgeBatch(EncodeEdgeBatch(b))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Migration || got.Epoch != 3 || len(got.Changes) != 2 {
		t.Fatalf("%+v", got)
	}
	if got.Changes[0] != b.Changes[0] || got.Changes[1] != b.Changes[1] {
		t.Fatalf("changes mismatch: %+v", got.Changes)
	}
	if len(got.States) != 1 || got.States[0] != b.States[0] {
		t.Fatalf("states mismatch: %+v", got.States)
	}
}

func TestVertexMsgBatchRoundTrip(t *testing.T) {
	b := &VertexMsgBatch{Step: 7, Async: true, Msgs: []VertexMsg{{1, 2, 3}, {4, 5, 6}}}
	got, err := DecodeVertexMsgBatch(EncodeVertexMsgBatch(b))
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 7 || !got.Async || len(got.Msgs) != 2 || got.Msgs[1] != b.Msgs[1] {
		t.Fatalf("%+v", got)
	}
}

func TestReplicaPartialRoundTrip(t *testing.T) {
	p := &ReplicaPartial{Step: 2, Vertex: 11, Agg: 22, HaveMsgs: true, MsgCount: 5, LocalOutDeg: 9}
	got, err := DecodeReplicaPartial(EncodeReplicaPartial(p))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *p {
		t.Fatalf("%+v != %+v", got, p)
	}
}

func TestValueUpdateRoundTrip(t *testing.T) {
	u := &ValueUpdate{Step: 1, Vertex: 2, State: 3, TotalOutDeg: 4, Scatter: true}
	got, err := DecodeValueUpdate(EncodeValueUpdate(u))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *u {
		t.Fatalf("%+v", got)
	}
}

func TestReplicaRegisterRoundTrip(t *testing.T) {
	rr := &ReplicaRegister{Vertex: 77, AgentID: 5}
	got, err := DecodeReplicaRegister(EncodeReplicaRegister(rr))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *rr {
		t.Fatalf("%+v", got)
	}
}

func TestReadyRoundTrip(t *testing.T) {
	m := &Ready{AgentID: 1, Step: 2, Phase: 1, ActiveNext: 3, Residual: 0.5,
		SplitWork: true, Masters: 10, Sent: 100, Received: 99, Idle: true}
	got, err := DecodeReady(EncodeReady(m))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *m {
		t.Fatalf("%+v", got)
	}
}

func TestAdvanceRoundTrip(t *testing.T) {
	a := &Advance{Step: 4, Phase: 2, Halt: true, N: 500, RunID: 8}
	got, err := DecodeAdvance(EncodeAdvance(a))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *a {
		t.Fatalf("%+v", got)
	}
}

func TestAlgoStartRoundTrip(t *testing.T) {
	s := &AlgoStart{RunID: 1, Algo: "pagerank", Async: false, MaxSteps: 20,
		Epsilon: 1e-8, FromScratch: true, Source: 42}
	got, err := DecodeAlgoStart(EncodeAlgoStart(s))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *s {
		t.Fatalf("%+v", got)
	}
}

func TestAlgoDoneRoundTrip(t *testing.T) {
	d := &AlgoDone{RunID: 9, Steps: 13, Converged: true}
	got, err := DecodeAlgoDone(EncodeAlgoDone(d))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *d {
		t.Fatalf("%+v", got)
	}
}

func TestQueryRoundTrips(t *testing.T) {
	q, err := DecodeQuery(EncodeQuery(&Query{Vertex: 123}))
	if err != nil || q.Vertex != 123 {
		t.Fatalf("query: %v %+v", err, q)
	}
	qr, err := DecodeQueryReply(EncodeQueryReply(&QueryReply{Found: true, State: 9, Step: 3}))
	if err != nil || !qr.Found || qr.State != 9 || qr.Step != 3 {
		t.Fatalf("reply: %v %+v", err, qr)
	}
}

func TestMetricRoundTrip(t *testing.T) {
	m, err := DecodeMetric(EncodeMetric(&Metric{AgentID: 1, Name: "qps", Value: 2.5}))
	if err != nil || m.Name != "qps" || m.Value != 2.5 {
		t.Fatalf("%v %+v", err, m)
	}
}

func TestJoinLeaveRoundTrips(t *testing.T) {
	j, err := DecodeJoin(EncodeJoin(&Join{Addr: "tcp://x:1"}))
	if err != nil || j.Addr != "tcp://x:1" {
		t.Fatalf("join: %v %+v", err, j)
	}
	jr, err := DecodeJoinReply(EncodeJoinReply(&JoinReply{
		AgentID: 7,
		View:    &View{Epoch: 2, Agents: []AgentInfo{{7, "tcp://x:1"}}},
	}))
	if err != nil || jr.AgentID != 7 || jr.View.Epoch != 2 || len(jr.View.Agents) != 1 {
		t.Fatalf("join reply: %v %+v", err, jr)
	}
	l, err := DecodeLeave(EncodeLeave(&Leave{AgentID: 3}))
	if err != nil || l.AgentID != 3 {
		t.Fatalf("leave: %v %+v", err, l)
	}
}

func TestDecodersRejectTruncation(t *testing.T) {
	full := EncodeReady(&Ready{AgentID: 1})
	for n := 0; n < len(full); n++ {
		if _, err := DecodeReady(full[:n]); err == nil {
			t.Fatalf("truncated ready at %d accepted", n)
		}
	}
	fullV := EncodeView(&View{Agents: []AgentInfo{{1, "a"}}})
	for n := 0; n < len(fullV); n++ {
		if _, err := DecodeView(fullV[:n]); err == nil {
			t.Fatalf("truncated view at %d accepted", n)
		}
	}
}

// Property: packet marshalling round-trips arbitrary payloads.
func TestPacketProperty(t *testing.T) {
	f := func(req uint32, from string, payload []byte) bool {
		if len(from) > 1<<16-1 {
			from = from[:1<<16-1]
		}
		p := &Packet{Type: TVertexMsgs, Req: req, From: from, Payload: payload}
		data, err := MarshalPacket(p)
		if err != nil {
			return false
		}
		got, err := UnmarshalPacket(data)
		if err != nil {
			return false
		}
		return got.Req == req && got.From == from && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeVertexMsgBatch(b *testing.B) {
	// The send-path encode: append into a pooled frame, release after
	// the (simulated) wire write recycles it.
	batch := &VertexMsgBatch{Step: 1, Msgs: make([]VertexMsg, 256)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := AppendVertexMsgBatch(GetFrame(8192), batch)
		ReleaseFrame(buf)
	}
}

func BenchmarkDecodeVertexMsgBatch(b *testing.B) {
	// The receive-path decode: into a reused scratch batch, as the agent
	// event loop does.
	data := EncodeVertexMsgBatch(&VertexMsgBatch{Step: 1, Msgs: make([]VertexMsg, 256)})
	var scratch VertexMsgBatch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeVertexMsgBatchInto(&scratch, data); err != nil {
			b.Fatal(err)
		}
	}
}

var benchBytes []byte

// TestDecodersNeverPanicOnGarbage feeds pseudo-random bytes to every
// decoder; they must return errors, never panic or over-allocate.
func TestDecodersNeverPanicOnGarbage(t *testing.T) {
	decoders := []func([]byte) error{
		func(b []byte) error { _, err := DecodeView(b); return err },
		func(b []byte) error { _, err := DecodeEdgeBatch(b); return err },
		func(b []byte) error { _, err := DecodeVertexMsgBatch(b); return err },
		func(b []byte) error { _, err := DecodeReplicaPartial(b); return err },
		func(b []byte) error { _, err := DecodeValueUpdate(b); return err },
		func(b []byte) error { _, err := DecodeReplicaRegister(b); return err },
		func(b []byte) error { _, err := DecodeReady(b); return err },
		func(b []byte) error { _, err := DecodeAdvance(b); return err },
		func(b []byte) error { _, err := DecodeAlgoStart(b); return err },
		func(b []byte) error { _, err := DecodeAlgoDone(b); return err },
		func(b []byte) error { _, err := DecodeQuery(b); return err },
		func(b []byte) error { _, err := DecodeQueryReply(b); return err },
		func(b []byte) error { _, err := DecodeMetric(b); return err },
		func(b []byte) error { _, err := DecodeJoin(b); return err },
		func(b []byte) error { _, err := DecodeJoinReply(b); return err },
		func(b []byte) error { _, err := DecodeLeave(b); return err },
		func(b []byte) error { _, err := DecodeRunStats(b); return err },
		func(b []byte) error { _, err := DecodeStringList(b); return err },
		func(b []byte) error { _, err := UnmarshalPacket(b); return err },
	}
	// Deterministic xorshift garbage.
	state := uint64(0x9e3779b97f4a7c15)
	next := func() byte {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return byte(state)
	}
	for size := 0; size <= 64; size++ {
		for trial := 0; trial < 32; trial++ {
			buf := make([]byte, size)
			for i := range buf {
				buf[i] = next()
			}
			for di, dec := range decoders {
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("decoder %d panicked on %d bytes: %v", di, size, r)
						}
					}()
					_ = dec(buf)
				}()
			}
		}
	}
}

package wire

import (
	"fmt"

	"elga/internal/events"
)

// Event and status frames. TEventBatch ships a participant's journalled
// control-plane events to the coordinator with the same lossy discipline
// (and the same ctxFlag-compatible framing) as TSpanBatch. TStatus /
// TStatusReply are the client-boundary introspection op: the per-agent
// health rollup plus the recent slice of the merged cluster timeline.

func appendEventRecord(w *Writer, e *events.Record) {
	w.U64(e.Seq)
	w.U64(uint64(e.Time))
	w.U8(uint8(e.Level))
	w.Str(e.Kind)
	w.Str(e.Proc)
	w.U64(e.TraceHi)
	w.U64(e.TraceLo)
	w.U32(e.RunID)
	w.U32(e.Step)
	w.U8(e.NFields)
	for i := 0; i < int(e.NFields); i++ {
		f := &e.Fields[i]
		w.Str(f.Key)
		w.Bool(f.IsStr)
		if f.IsStr {
			w.Str(f.Str)
		} else {
			w.U64(f.U64)
		}
	}
}

// readEventRecord parses one event record. A corrupt field count still
// consumes the declared fields so the reader stays aligned; only the
// first MaxFields are kept.
func readEventRecord(r *Reader) events.Record {
	e := events.Record{
		Seq:     r.U64(),
		Time:    int64(r.U64()),
		Level:   events.Level(r.U8()),
		Kind:    r.Str(),
		Proc:    r.Str(),
		TraceHi: r.U64(),
		TraceLo: r.U64(),
		RunID:   r.U32(),
		Step:    r.U32(),
	}
	n := int(r.U8())
	for i := 0; i < n && r.Err() == nil; i++ {
		f := events.Field{Key: r.Str(), IsStr: r.Bool()}
		if f.IsStr {
			f.Str = r.Str()
		} else {
			f.U64 = r.U64()
		}
		if i < events.MaxFields {
			e.Fields[i] = f
			e.NFields++
		}
	}
	return e
}

// AppendEventBatch appends a TEventBatch payload to dst. Each record
// already carries its participant name (stamped by the journal), so the
// coordinator can merge batches from every process into one timeline.
// dropped is the sender's cumulative journal drop counter, letting the
// coordinator account lossiness it never saw.
func AppendEventBatch(dst []byte, evs []events.Record, dropped uint64) []byte {
	w := Writer{buf: dst}
	w.U64(dropped)
	w.U32(uint32(len(evs)))
	for i := range evs {
		appendEventRecord(&w, &evs[i])
	}
	return w.buf
}

// EncodeEventBatch serializes a TEventBatch payload.
func EncodeEventBatch(evs []events.Record, dropped uint64) []byte {
	return AppendEventBatch(nil, evs, dropped)
}

// DecodeEventBatch parses a TEventBatch payload. Records are
// materialized copies; they outlive the frame.
func DecodeEventBatch(data []byte) (evs []events.Record, dropped uint64, err error) {
	r := NewReader(data)
	dropped = r.U64()
	n := int(r.U32())
	if r.Err() == nil && n >= 0 {
		evs = make([]events.Record, 0, capHint(n))
		for i := 0; i < n && r.Err() == nil; i++ {
			evs = append(evs, readEventRecord(r))
		}
	}
	if err := r.Err(); err != nil {
		return nil, 0, fmt.Errorf("decode event batch: %w", err)
	}
	return evs, dropped, nil
}

// Health status codes, ordered by severity. The coordinator's health
// model assigns one per agent; HealthName renders them for logs and the
// elga status view.
const (
	HealthHealthy uint8 = iota
	HealthLagging
	HealthStraggler
	HealthSuspect
)

// HealthName names a health status code.
func HealthName(s uint8) string {
	switch s {
	case HealthHealthy:
		return "healthy"
	case HealthLagging:
		return "lagging"
	case HealthStraggler:
		return "straggler"
	case HealthSuspect:
		return "suspect"
	default:
		return fmt.Sprintf("health(%d)", s)
	}
}

// AgentHealth is one agent's scored rollup in a TStatusReply: the fused
// EMAs the score was computed from ride along so the operator sees the
// evidence, not just the verdict.
type AgentHealth struct {
	AgentID uint64
	Addr    string
	// Status is one of the Health* codes; Score is the agent's step-time
	// ratio against the cluster median (1.0 = median).
	Status uint8
	Score  float64
	// Cause names the dominant straggler cause ("inbox-backlog",
	// "combine-time", "retransmits", "checkpoint-overlap"); empty while
	// healthy.
	Cause string
	// Signal EMAs: per-step compute and combine seconds, barrier-wait
	// seconds (from span aggregates), inbox/queue depths, and the
	// retransmit rate.
	StepSeconds    float64
	CombineSeconds float64
	BarrierSeconds float64
	InboxDepth     float64
	QueueDepth     float64
	Retransmits    float64
	// Events counts timeline events attributed to this agent;
	// HeartbeatAgeNanos is the time since its last lease renewal.
	Events            uint64
	HeartbeatAgeNanos int64
}

// StatusReply is the TStatusReply payload: cluster coordinates, the
// per-agent health table, and the newest slice of the event timeline.
type StatusReply struct {
	Epoch    uint64
	BatchID  uint64
	Vertices uint64
	// RunID/Step describe the active run when Running; zero otherwise.
	RunID   uint32
	Step    uint32
	Running bool
	// EventSeq is the timeline's high-water sequence number (events ever
	// merged); EventsDropped counts events participants discarded before
	// shipment, as reported via their batches' backpressure counters.
	EventSeq      uint64
	EventsDropped uint64
	Agents        []AgentHealth
	Timeline      []events.Record
}

// AppendStatusReq appends a TStatus request payload: how many timeline
// events the caller wants back (0 = server default).
func AppendStatusReq(dst []byte, maxEvents uint32) []byte {
	w := Writer{buf: dst}
	w.U32(maxEvents)
	return w.buf
}

// DecodeStatusReq parses a TStatus request. An empty payload means the
// server default, so older clients stay compatible.
func DecodeStatusReq(data []byte) (uint32, error) {
	if len(data) == 0 {
		return 0, nil
	}
	r := NewReader(data)
	n := r.U32()
	if err := r.Err(); err != nil {
		return 0, fmt.Errorf("decode status request: %w", err)
	}
	return n, nil
}

// AppendStatusReply appends a TStatusReply payload to dst.
func AppendStatusReply(dst []byte, s *StatusReply) []byte {
	w := Writer{buf: dst}
	w.U64(s.Epoch)
	w.U64(s.BatchID)
	w.U64(s.Vertices)
	w.U32(s.RunID)
	w.U32(s.Step)
	w.Bool(s.Running)
	w.U64(s.EventSeq)
	w.U64(s.EventsDropped)
	w.U32(uint32(len(s.Agents)))
	for i := range s.Agents {
		a := &s.Agents[i]
		w.U64(a.AgentID)
		w.Str(a.Addr)
		w.U8(a.Status)
		w.F64(a.Score)
		w.Str(a.Cause)
		w.F64(a.StepSeconds)
		w.F64(a.CombineSeconds)
		w.F64(a.BarrierSeconds)
		w.F64(a.InboxDepth)
		w.F64(a.QueueDepth)
		w.F64(a.Retransmits)
		w.U64(a.Events)
		w.U64(uint64(a.HeartbeatAgeNanos))
	}
	w.U32(uint32(len(s.Timeline)))
	for i := range s.Timeline {
		appendEventRecord(&w, &s.Timeline[i])
	}
	return w.buf
}

// EncodeStatusReply serializes a TStatusReply payload.
func EncodeStatusReply(s *StatusReply) []byte { return AppendStatusReply(nil, s) }

// DecodeStatusReply parses a TStatusReply payload.
func DecodeStatusReply(data []byte) (*StatusReply, error) {
	r := NewReader(data)
	s := &StatusReply{
		Epoch:         r.U64(),
		BatchID:       r.U64(),
		Vertices:      r.U64(),
		RunID:         r.U32(),
		Step:          r.U32(),
		Running:       r.Bool(),
		EventSeq:      r.U64(),
		EventsDropped: r.U64(),
	}
	na := int(r.U32())
	if r.Err() == nil && na >= 0 {
		s.Agents = make([]AgentHealth, 0, capHint(na))
		for i := 0; i < na && r.Err() == nil; i++ {
			s.Agents = append(s.Agents, AgentHealth{
				AgentID:           r.U64(),
				Addr:              r.Str(),
				Status:            r.U8(),
				Score:             r.F64(),
				Cause:             r.Str(),
				StepSeconds:       r.F64(),
				CombineSeconds:    r.F64(),
				BarrierSeconds:    r.F64(),
				InboxDepth:        r.F64(),
				QueueDepth:        r.F64(),
				Retransmits:       r.F64(),
				Events:            r.U64(),
				HeartbeatAgeNanos: int64(r.U64()),
			})
		}
	}
	nt := int(r.U32())
	if r.Err() == nil && nt >= 0 {
		s.Timeline = make([]events.Record, 0, capHint(nt))
		for i := 0; i < nt && r.Err() == nil; i++ {
			s.Timeline = append(s.Timeline, readEventRecord(r))
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("decode status reply: %w", err)
	}
	return s, nil
}

package wire

import (
	"bytes"
	"testing"
)

func TestVertexDigestRoundTrip(t *testing.T) {
	d := &VertexDigest{
		AgentID:  7,
		Epoch:    42,
		Vertices: 512,
		Entries: []DigestEntry{
			{Vertex: 3, Local: 2, Peer: 9, PeerMsgs: 40},
			{Vertex: 1 << 40, Local: 0, Peer: 8, PeerMsgs: 7},
		},
	}
	got, err := DecodeVertexDigest(EncodeVertexDigest(d))
	if err != nil {
		t.Fatal(err)
	}
	if got.AgentID != d.AgentID || got.Epoch != d.Epoch || got.Vertices != d.Vertices {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Entries) != len(d.Entries) {
		t.Fatalf("entries: got %d, want %d", len(got.Entries), len(d.Entries))
	}
	for i, e := range got.Entries {
		if e != d.Entries[i] {
			t.Fatalf("entry %d: got %+v, want %+v", i, e, d.Entries[i])
		}
	}
}

func TestVertexDigestHeaderOnly(t *testing.T) {
	// Agents send entry-less digests to mark reporter coverage; the header
	// must survive alone.
	d := &VertexDigest{AgentID: 3, Epoch: 9, Vertices: 128}
	got, err := DecodeVertexDigest(EncodeVertexDigest(d))
	if err != nil {
		t.Fatal(err)
	}
	if got.AgentID != 3 || got.Vertices != 128 || len(got.Entries) != 0 {
		t.Fatalf("header-only digest mangled: %+v", got)
	}
}

func TestVertexDigestRejectsTruncation(t *testing.T) {
	full := EncodeVertexDigest(&VertexDigest{
		AgentID: 1, Epoch: 2, Vertices: 3,
		Entries: []DigestEntry{{Vertex: 4, Local: 5, Peer: 6, PeerMsgs: 7}},
	})
	for n := 0; n < len(full); n++ {
		if _, err := DecodeVertexDigest(full[:n]); err == nil {
			t.Fatalf("truncated digest at %d accepted", n)
		}
	}
}

func TestViewOverridesRoundTrip(t *testing.T) {
	v := &View{
		Epoch: 5, BatchID: 2, N: 100,
		Agents: []AgentInfo{{1, "a"}, {2, "b"}},
		Overrides: []VertexOverride{
			{Vertex: 10, AgentID: 2},
			{Vertex: 77, AgentID: 1},
		},
	}
	got, err := DecodeView(EncodeView(v))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Overrides) != 2 {
		t.Fatalf("overrides: got %d, want 2", len(got.Overrides))
	}
	for i, o := range got.Overrides {
		if o != v.Overrides[i] {
			t.Fatalf("override %d: got %+v, want %+v", i, o, v.Overrides[i])
		}
	}
}

func TestViewWithoutOverridesMatchesLegacyEncoding(t *testing.T) {
	// An override-free view must encode byte-identically to the
	// pre-override wire format, and a legacy payload (which simply ends at
	// the sketch) must decode with a nil override table. This is the
	// mixed-version compatibility contract: relays and old agents never
	// look past the sketch.
	v := &View{Epoch: 3, BatchID: 1, N: 50, Agents: []AgentInfo{{1, "a"}}, Sketch: []byte{1, 2, 3}}
	enc := EncodeView(v)
	legacy := legacyEncodeView(v)
	if !bytes.Equal(enc, legacy) {
		t.Fatalf("override-free view encoding diverged from legacy layout:\n got %x\nwant %x", enc, legacy)
	}
	got, err := DecodeView(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if got.Overrides != nil {
		t.Fatalf("legacy view decoded with overrides: %+v", got.Overrides)
	}
	if got.Epoch != 3 || len(got.Agents) != 1 || !bytes.Equal(got.Sketch, v.Sketch) {
		t.Fatalf("legacy view mangled: %+v", got)
	}
}

// legacyEncodeView reproduces the pre-override view layout: everything up
// to and including the sketch, nothing after.
func legacyEncodeView(v *View) []byte {
	w := Writer{}
	w.U64(v.Epoch)
	w.U64(v.BatchID)
	w.U64(v.N)
	w.U32(uint32(len(v.Agents)))
	for _, a := range v.Agents {
		w.U64(a.ID)
		w.Str(a.Addr)
	}
	w.Blob(v.Sketch)
	return w.buf
}

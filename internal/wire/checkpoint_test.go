package wire

import (
	"bytes"
	"testing"

	"elga/internal/events"
)

func testMeta() CheckpointMeta {
	return CheckpointMeta{
		Key:         "agent-3",
		AgentID:     7,
		Seq:         12,
		ViewEpoch:   42,
		BatchID:     5,
		OverrideVer: 42,
		RunID:       9,
		Step:        31,
		SealedGen:   4,
		WallNanos:   1_700_000_000_000_000_000,
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := &Manifest{
		Meta: testMeta(),
		Segments: []SegmentRef{
			{Kind: SegSealed, Name: "01-abcdef", Length: 1024, CRC: 0xdeadbeef},
			{Kind: SegTail, Name: "02-001122", Length: 0, CRC: 0},
			{Kind: SegStates, Name: "03-ffee", Length: 77, CRC: 1},
		},
	}
	got, err := DecodeManifest(EncodeManifest(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != m.Meta {
		t.Fatalf("meta mismatch:\n got %+v\nwant %+v", got.Meta, m.Meta)
	}
	if len(got.Segments) != len(m.Segments) {
		t.Fatalf("segments: got %d, want %d", len(got.Segments), len(m.Segments))
	}
	for i, s := range got.Segments {
		if s != m.Segments[i] {
			t.Fatalf("segment %d: got %+v, want %+v", i, s, m.Segments[i])
		}
	}
}

func TestManifestRejectsTruncation(t *testing.T) {
	full := EncodeManifest(&Manifest{
		Meta:     testMeta(),
		Segments: []SegmentRef{{Kind: SegSealed, Name: "01-ab", Length: 3, CRC: 4}},
	})
	for n := 0; n < len(full); n++ {
		if _, err := DecodeManifest(full[:n]); err == nil {
			t.Fatalf("truncated manifest at %d accepted", n)
		}
	}
}

func TestCheckpointMarkRoundTrip(t *testing.T) {
	m := &CheckpointMark{Meta: testMeta(), Bytes: 9999}
	got, err := DecodeCheckpointMark(EncodeCheckpointMark(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != m.Meta || got.Bytes != m.Bytes {
		t.Fatalf("mark mismatch: got %+v, want %+v", got, m)
	}
	full := EncodeCheckpointMark(m)
	for n := 0; n < len(full); n++ {
		if _, err := DecodeCheckpointMark(full[:n]); err == nil {
			t.Fatalf("truncated mark at %d accepted", n)
		}
	}
}

func TestMailboxWatermarksRoundTrip(t *testing.T) {
	ws := []MailboxWatermark{
		{RunID: 1, Step: 2, Count: 3},
		{RunID: 1, Step: 3, Count: 40},
	}
	got, err := DecodeMailboxWatermarks(AppendMailboxWatermarks(nil, ws))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ws) {
		t.Fatalf("watermarks: got %d, want %d", len(got), len(ws))
	}
	for i, w := range got {
		if w != ws[i] {
			t.Fatalf("watermark %d: got %+v, want %+v", i, w, ws[i])
		}
	}
	empty, err := DecodeMailboxWatermarks(AppendMailboxWatermarks(nil, nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty watermarks: %v %v", empty, err)
	}
}

func TestCoordStateRoundTrip(t *testing.T) {
	cs := &CoordState{
		View:        EncodeView(&View{Epoch: 8, BatchID: 2, N: 60, Agents: []AgentInfo{{1, "a"}, {2, "b"}}}),
		NextAgentID: 17,
		NextRunID:   5,
		Marks: []CheckpointMark{
			{Meta: testMeta(), Bytes: 123},
		},
		EventSeq: 42,
		Events: []events.Record{
			{Seq: 41, Time: 99, Level: events.Warn, Kind: events.KindEvict, Proc: "coord"},
			{Seq: 42, Time: 100, Kind: events.KindMigrationStart, Proc: "coord"},
		},
	}
	got, err := DecodeCoordState(EncodeCoordState(cs))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.View, cs.View) || got.NextAgentID != 17 || got.NextRunID != 5 {
		t.Fatalf("coord state mismatch: %+v", got)
	}
	if len(got.Marks) != 1 || got.Marks[0] != cs.Marks[0] {
		t.Fatalf("marks mismatch: %+v", got.Marks)
	}
	if got.EventSeq != 42 || len(got.Events) != 2 ||
		got.Events[0] != cs.Events[0] || got.Events[1] != cs.Events[1] {
		t.Fatalf("timeline mismatch: seq=%d events=%+v", got.EventSeq, got.Events)
	}
	v, err := DecodeView(got.View)
	if err != nil || v.Epoch != 8 || len(v.Agents) != 2 {
		t.Fatalf("embedded view mangled: %+v err=%v", v, err)
	}
	// Truncation is rejected everywhere except the one boundary that IS a
	// complete pre-events encoding (see TestCoordStateBackCompat).
	full := EncodeCoordState(cs)
	legacy := len(EncodeCoordState(&CoordState{
		View: cs.View, NextAgentID: cs.NextAgentID, NextRunID: cs.NextRunID, Marks: cs.Marks,
	})) - 12 // minus the empty EventSeq (u64) + count (u32) tail
	for n := 0; n < len(full); n++ {
		if n == legacy {
			continue
		}
		if _, err := DecodeCoordState(full[:n]); err == nil {
			t.Fatalf("truncated coord state at %d accepted", n)
		}
	}
}

// TestCoordStateBackCompat feeds the decoder a snapshot written before
// the event timeline existed (the encoding simply ended after the cut
// table). It must parse with a zero timeline, not error — durable
// coordinator state from older deployments stays restorable.
func TestCoordStateBackCompat(t *testing.T) {
	cs := &CoordState{
		View:        EncodeView(&View{Epoch: 3, N: 60, Agents: []AgentInfo{{1, "a"}}}),
		NextAgentID: 9,
		NextRunID:   2,
		Marks:       []CheckpointMark{{Meta: testMeta(), Bytes: 7}},
	}
	full := EncodeCoordState(cs)
	legacy := full[:len(full)-12] // strip the empty timeline tail: pre-events layout
	got, err := DecodeCoordState(legacy)
	if err != nil {
		t.Fatalf("pre-events snapshot rejected: %v", err)
	}
	if got.NextAgentID != 9 || got.NextRunID != 2 || len(got.Marks) != 1 {
		t.Fatalf("legacy fields mangled: %+v", got)
	}
	if got.EventSeq != 0 || got.Events != nil {
		t.Fatalf("legacy snapshot grew a timeline: seq=%d events=%+v", got.EventSeq, got.Events)
	}
}

func TestJoinRestoreRoundTrip(t *testing.T) {
	meta := testMeta()
	j := &Join{Addr: "inproc-9", Restore: &meta}
	got, err := DecodeJoin(AppendJoin(nil, j))
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr != j.Addr {
		t.Fatalf("addr: got %q, want %q", got.Addr, j.Addr)
	}
	if got.Restore == nil || *got.Restore != meta {
		t.Fatalf("restore: got %+v, want %+v", got.Restore, meta)
	}
}

func TestJoinWithoutRestoreMatchesLegacyEncoding(t *testing.T) {
	// A restore-free join must encode byte-identically to the pre-restore
	// wire format (just the address), and a legacy payload must decode
	// with a nil Restore — the mixed-version compatibility contract.
	j := &Join{Addr: "inproc-3"}
	enc := AppendJoin(nil, j)
	legacy := (&Writer{}).strOnly(j.Addr)
	if !bytes.Equal(enc, legacy) {
		t.Fatalf("restore-free join diverged from legacy layout:\n got %x\nwant %x", enc, legacy)
	}
	got, err := DecodeJoin(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr != j.Addr || got.Restore != nil {
		t.Fatalf("legacy join mangled: %+v", got)
	}
}

// strOnly reproduces the legacy join layout: a lone address string.
func (w *Writer) strOnly(s string) []byte {
	w.Str(s)
	return w.buf
}

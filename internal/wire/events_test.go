package wire

import (
	"testing"

	"elga/internal/events"
)

func testEventRecords() []events.Record {
	evict := events.Record{
		Seq: 11, Time: 1_700_000_000_000_000_001, Level: events.Warn,
		Kind: events.KindEvict, Proc: "coord",
		TraceHi: 0xa1, TraceLo: 0xb2, RunID: 4, Step: 9,
	}
	evict.Fields[0] = events.U("agent", 7)
	evict.Fields[1] = events.S("addr", "inproc-3")
	evict.NFields = 2
	retry := events.Record{
		Seq: 12, Time: 1_700_000_000_000_000_002,
		Kind: events.KindRetry, Proc: "client",
	}
	retry.Fields[0] = events.S("op", "run")
	retry.Fields[1] = events.U("attempt", 2)
	retry.NFields = 2
	return []events.Record{evict, retry}
}

func TestEventBatchRoundTrip(t *testing.T) {
	in := testEventRecords()
	out, dropped, err := DecodeEventBatch(EncodeEventBatch(in, 5))
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 5 {
		t.Fatalf("dropped = %d, want 5", dropped)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestEventBatchEmpty(t *testing.T) {
	out, dropped, err := DecodeEventBatch(EncodeEventBatch(nil, 3))
	if err != nil || len(out) != 0 || dropped != 3 {
		t.Fatalf("empty batch: evs=%v dropped=%d err=%v", out, dropped, err)
	}
}

func TestEventBatchRejectsTruncation(t *testing.T) {
	buf := EncodeEventBatch(testEventRecords(), 1)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeEventBatch(buf[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestStatusReqRoundTrip(t *testing.T) {
	n, err := DecodeStatusReq(AppendStatusReq(nil, 25))
	if err != nil || n != 25 {
		t.Fatalf("status req: n=%d err=%v", n, err)
	}
	// Empty payload (an older client) means the server default.
	n, err = DecodeStatusReq(nil)
	if err != nil || n != 0 {
		t.Fatalf("empty status req: n=%d err=%v", n, err)
	}
}

func TestStatusReplyRoundTrip(t *testing.T) {
	in := &StatusReply{
		Epoch: 6, BatchID: 3, Vertices: 120,
		RunID: 9, Step: 4, Running: true,
		EventSeq: 77, EventsDropped: 2,
		Agents: []AgentHealth{
			{
				AgentID: 1, Addr: "inproc-2", Status: HealthStraggler, Score: 2.4,
				Cause: "inbox-backlog", StepSeconds: 0.08, CombineSeconds: 0.01,
				BarrierSeconds: 0.002, InboxDepth: 140, QueueDepth: 12,
				Retransmits: 3, Events: 9, HeartbeatAgeNanos: 5_000_000,
			},
			{AgentID: 2, Addr: "inproc-3", Status: HealthHealthy, Score: 1.0},
		},
		Timeline: testEventRecords(),
	}
	out, err := DecodeStatusReply(EncodeStatusReply(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Epoch != in.Epoch || out.BatchID != in.BatchID || out.Vertices != in.Vertices ||
		out.RunID != in.RunID || out.Step != in.Step || out.Running != in.Running ||
		out.EventSeq != in.EventSeq || out.EventsDropped != in.EventsDropped {
		t.Fatalf("header mismatch: %+v", out)
	}
	if len(out.Agents) != 2 || out.Agents[0] != in.Agents[0] || out.Agents[1] != in.Agents[1] {
		t.Fatalf("agents mismatch: %+v", out.Agents)
	}
	if len(out.Timeline) != 2 || out.Timeline[0] != in.Timeline[0] || out.Timeline[1] != in.Timeline[1] {
		t.Fatalf("timeline mismatch: %+v", out.Timeline)
	}
}

func TestStatusReplyRejectsTruncation(t *testing.T) {
	buf := EncodeStatusReply(&StatusReply{
		Epoch:  1,
		Agents: []AgentHealth{{AgentID: 1, Addr: "a"}},
		Timeline: []events.Record{
			{Seq: 1, Kind: events.KindJoin, Proc: "coord"},
		},
	})
	for cut := 0; cut < len(buf); cut++ {
		if _, err := DecodeStatusReply(buf[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestHealthName(t *testing.T) {
	for st, want := range map[uint8]string{
		HealthHealthy: "healthy", HealthLagging: "lagging",
		HealthStraggler: "straggler", HealthSuspect: "suspect",
		99: "health(99)",
	} {
		if got := HealthName(st); got != want {
			t.Fatalf("HealthName(%d) = %q, want %q", st, got, want)
		}
	}
}

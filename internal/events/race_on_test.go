//go:build race

package events

// raceEnabled reports whether the race detector is compiled in; alloc
// ceilings are skipped under -race because instrumentation inserts its
// own allocations.
const raceEnabled = true

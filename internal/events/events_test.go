package events

import (
	"fmt"
	"testing"

	"elga/internal/trace"
)

// TestNilJournalSafe exercises every method on the nil off-switch: each
// must be a no-op, never a panic — the contract callers rely on instead
// of guarding every emission site.
func TestNilJournalSafe(t *testing.T) {
	var j *Journal
	if j.Enabled() {
		t.Fatal("nil journal reports enabled")
	}
	j.Emit(Info, KindJoin, trace.SpanContext{}, U("agent", 1))
	j.SetProc("ghost")
	if got := j.Proc(); got != "" {
		t.Fatalf("nil Proc() = %q", got)
	}
	if b := j.TakeBatch(); b != nil {
		t.Fatalf("nil TakeBatch() = %v", b)
	}
	if s := j.Snapshot(); s != nil {
		t.Fatalf("nil Snapshot() = %v", s)
	}
	if d := j.Dropped(); d != 0 {
		t.Fatalf("nil Dropped() = %d", d)
	}
}

// TestNewJournalDisabled checks that a disabled config yields the nil
// journal rather than an inert allocated one.
func TestNewJournalDisabled(t *testing.T) {
	if j := NewJournal("agent", Config{}); j != nil {
		t.Fatal("disabled config produced a non-nil journal")
	}
	if j := NewJournal("agent", Config{Enabled: true}); j == nil {
		t.Fatal("enabled config produced a nil journal")
	}
}

// TestEmitFieldsAndProc checks field capture (including the MaxFields
// overflow truncation), trace correlation, and late proc renaming.
func TestEmitFieldsAndProc(t *testing.T) {
	j := NewJournal("agent", Config{Enabled: true})
	j.SetProc("agent-7")
	ctx := trace.SpanContext{TraceHi: 0xa, TraceLo: 0xb, RunID: 3, Step: 9}
	j.Emit(Warn, KindEvict, ctx,
		U("agent", 7), S("addr", "inproc-3"),
		U("extra1", 1), S("extra2", "x"), U("overflow", 5))

	batch := j.TakeBatch()
	if len(batch) != 1 {
		t.Fatalf("batch length %d, want 1", len(batch))
	}
	r := batch[0]
	if r.Proc != "agent-7" || r.Kind != KindEvict || r.Level != Warn {
		t.Fatalf("record header %+v", r)
	}
	if r.TraceHi != 0xa || r.TraceLo != 0xb || r.RunID != 3 || r.Step != 9 {
		t.Fatalf("trace correlation lost: %+v", r)
	}
	if r.NFields != MaxFields {
		t.Fatalf("NFields = %d, want %d (overflow truncated)", r.NFields, MaxFields)
	}
	if f, ok := r.Field("agent"); !ok || f.U64 != 7 || f.Value() != "7" {
		t.Fatalf("field agent = %+v ok=%v", f, ok)
	}
	if f, ok := r.Field("addr"); !ok || f.Str != "inproc-3" || f.Value() != "inproc-3" {
		t.Fatalf("field addr = %+v ok=%v", f, ok)
	}
	if _, ok := r.Field("overflow"); ok {
		t.Fatal("field beyond MaxFields survived")
	}
	if _, ok := r.Field("absent"); ok {
		t.Fatal("lookup of absent field reported present")
	}
}

// TestTakeBatchDrains checks that TakeBatch hands off pending records
// exactly once and returns nil when there is nothing to ship.
func TestTakeBatchDrains(t *testing.T) {
	j := NewJournal("client", Config{Enabled: true})
	if b := j.TakeBatch(); b != nil {
		t.Fatalf("empty journal TakeBatch = %v", b)
	}
	for i := 0; i < 3; i++ {
		j.Emit(Info, KindRetry, trace.SpanContext{}, U("attempt", uint64(i)))
	}
	if b := j.TakeBatch(); len(b) != 3 {
		t.Fatalf("first drain got %d records, want 3", len(b))
	}
	if b := j.TakeBatch(); b != nil {
		t.Fatalf("second drain got %v, want nil", b)
	}
}

// TestRingWrapAndSnapshot overfills a small ring and checks Snapshot
// keeps only the newest capacity records, oldest first.
func TestRingWrapAndSnapshot(t *testing.T) {
	j := NewJournal("agent", Config{Enabled: true, Ring: 4})
	for i := 0; i < 10; i++ {
		j.Emit(Info, KindBatch, trace.SpanContext{}, U("i", uint64(i)))
	}
	snap := j.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot length %d, want 4", len(snap))
	}
	for k, r := range snap {
		want := uint64(6 + k) // events 6..9 survive, oldest first
		if f, _ := r.Field("i"); f.U64 != want {
			t.Fatalf("snapshot[%d] i = %d, want %d", k, f.U64, want)
		}
	}
}

// TestPendingOverflowDrops fills the pending batch past maxPending and
// checks the overflow is counted, not buffered — the ring still records
// the dropped events as local history.
func TestPendingOverflowDrops(t *testing.T) {
	j := NewJournal("agent", Config{Enabled: true, Ring: 8})
	for i := 0; i < maxPending+5; i++ {
		j.Emit(Info, KindBatch, trace.SpanContext{})
	}
	if d := j.Dropped(); d != 5 {
		t.Fatalf("dropped = %d, want 5", d)
	}
	if b := j.TakeBatch(); len(b) != maxPending {
		t.Fatalf("pending batch %d, want %d", len(b), maxPending)
	}
	// Once drained, new events buffer again.
	j.Emit(Info, KindBatch, trace.SpanContext{})
	if b := j.TakeBatch(); len(b) != 1 {
		t.Fatalf("post-drain batch %d, want 1", len(b))
	}
	if d := j.Dropped(); d != 5 {
		t.Fatalf("dropped moved to %d after drain, want 5", d)
	}
}

// TestEmitZeroAlloc is the hot-path contract: an armed journal emission
// stays heap-free (fields land in the record's inline array) and the nil
// off-switch is exactly one branch. Skipped under -race, whose
// instrumentation allocates.
func TestEmitZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc ceilings are meaningless under -race")
	}
	var off *Journal
	if n := testing.AllocsPerRun(100, func() {
		off.Emit(Info, KindBatch, trace.SpanContext{}, U("agent", 1), U("batch", 2))
	}); n != 0 {
		t.Fatalf("nil journal Emit allocates %v/op, want 0", n)
	}
	on := NewJournal("agent", Config{Enabled: true, Ring: 16})
	if n := testing.AllocsPerRun(100, func() {
		on.TakeBatch() // keep pending empty so append never grows
		on.Emit(Info, KindBatch, trace.SpanContext{}, U("agent", 1), U("batch", 2))
	}); n > 1 {
		// One alloc/op allowance: the drained pending slice regrows from
		// nil on the first append after each TakeBatch.
		t.Fatalf("armed journal Emit allocates %v/op, want <= 1", n)
	}
}

// TestTimelineAppendRecent checks sequence assignment, ring eviction,
// and the newest-n/oldest-first Recent contract.
func TestTimelineAppendRecent(t *testing.T) {
	tl := NewTimeline(4)
	for i := 0; i < 6; i++ {
		tl.Append(Record{Kind: KindJoin, Proc: fmt.Sprintf("agent-%d", i)})
	}
	if tl.Seq() != 6 {
		t.Fatalf("seq = %d, want 6", tl.Seq())
	}
	all := tl.Recent(0)
	if len(all) != 4 {
		t.Fatalf("Recent(0) length %d, want 4 (ring capacity)", len(all))
	}
	for k, r := range all {
		if want := uint64(3 + k); r.Seq != want {
			t.Fatalf("Recent(0)[%d].Seq = %d, want %d", k, r.Seq, want)
		}
	}
	last2 := tl.Recent(2)
	if len(last2) != 2 || last2[0].Seq != 5 || last2[1].Seq != 6 {
		t.Fatalf("Recent(2) = %+v", last2)
	}
	if got := tl.Recent(100); len(got) != 4 {
		t.Fatalf("Recent(100) length %d, want 4", len(got))
	}
}

// TestTimelineRestore round-trips a timeline through Recent/Seq and
// Restore: sequence numbering must resume where the checkpoint left off.
func TestTimelineRestore(t *testing.T) {
	tl := NewTimeline(8)
	tl.Append(Record{Kind: KindJoin}, Record{Kind: KindSeal}, Record{Kind: KindRunStart})
	recs, seq := tl.Recent(0), tl.Seq()

	fresh := NewTimeline(8)
	fresh.Restore(recs, seq)
	if fresh.Seq() != 3 {
		t.Fatalf("restored seq = %d, want 3", fresh.Seq())
	}
	got := fresh.Recent(0)
	if len(got) != 3 || got[0].Kind != KindJoin || got[2].Kind != KindRunStart {
		t.Fatalf("restored records = %+v", got)
	}
	// New appends continue the sequence, never reuse it.
	fresh.Append(Record{Kind: KindRunDone})
	if last := fresh.Recent(1); last[0].Seq != 4 {
		t.Fatalf("post-restore append Seq = %d, want 4", last[0].Seq)
	}

	// Restoring more records than capacity keeps the newest.
	small := NewTimeline(2)
	small.Restore(recs, seq)
	got = small.Recent(0)
	if len(got) != 2 || got[0].Kind != KindSeal || got[1].Kind != KindRunStart {
		t.Fatalf("capacity-clipped restore = %+v", got)
	}
}

// TestNilTimelineSafe mirrors the journal nil contract for Timeline.
func TestNilTimelineSafe(t *testing.T) {
	var tl *Timeline
	tl.Append(Record{Kind: KindJoin})
	tl.Restore([]Record{{Kind: KindJoin}}, 7)
	if tl.Seq() != 0 {
		t.Fatalf("nil Seq = %d", tl.Seq())
	}
	if r := tl.Recent(5); r != nil {
		t.Fatalf("nil Recent = %v", r)
	}
}

// TestConfigDefaults checks withDefaults/Resolve fill capacities without
// clobbering explicit settings.
func TestConfigDefaults(t *testing.T) {
	c := (Config{Enabled: true}).withDefaults()
	if c.Ring != DefaultRing || c.Timeline != DefaultTimeline {
		t.Fatalf("defaults = %+v", c)
	}
	c = (Config{Enabled: true, Ring: 32, Timeline: 64}).withDefaults()
	if c.Ring != 32 || c.Timeline != 64 {
		t.Fatalf("explicit sizes clobbered: %+v", c)
	}
	if r := Resolve(&Config{Enabled: true, Ring: 5}); !r.Enabled || r.Ring != 5 {
		t.Fatalf("Resolve(ptr) = %+v", r)
	}
}

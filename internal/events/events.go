// Package events is the cluster's structured control-plane log: leveled,
// key-value, trace-correlated records of every decision the cluster
// makes — joins, leaves, lease evictions, migration rounds, repartition
// plans, checkpoint commits and busy-drops, retries. Each participant
// keeps a bounded ring journal and ships pending records lossily to the
// coordinator (TEventBatch, on the TMetric cadence), which merges them
// into one durable timeline that rides the coordinator checkpoint.
//
// Like trace.Tracer, a nil *Journal is the zero-cost off switch: every
// method is safe on a nil receiver, so a disabled journal costs one
// branch and zero allocations — the discipline the superstep alloc
// ceiling depends on.
package events

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"elga/internal/trace"
)

// Level grades an event's severity.
type Level uint8

const (
	Info Level = iota
	Warn
	Error
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	default:
		return "level-" + strconv.Itoa(int(l))
	}
}

// Event kinds: the closed taxonomy of control-plane decisions. Keeping
// them as named constants (rather than free-form strings) is what lets
// the chaos tests assert causal order and the health model count by
// kind without parsing.
const (
	KindJoin            = "join"             // agent admitted to the view
	KindLeave           = "leave"            // agent left voluntarily
	KindEvict           = "evict"            // lease expired, agent evicted
	KindMigrationStart  = "migration-start"  // epoch bump opened a migration round
	KindMigrationDone   = "migration-done"   // all masters confirmed the epoch
	KindOverrideRebase  = "override-rebase"  // placement overrides pruned after membership change
	KindRepartitionPlan = "repartition-plan" // planner emitted moves (gain, moves, overrides)
	KindCheckpoint      = "checkpoint"       // snapshot submitted to the background writer
	KindCheckpointDrop  = "checkpoint-drop"  // snapshot dropped because the writer was busy
	KindRestore         = "restore"          // participant restored state from a checkpoint
	KindRunStart        = "run-start"        // algorithm run admitted
	KindRunDone         = "run-done"         // algorithm run finished
	KindSeal            = "seal"             // graph seal round
	KindBatch           = "batch"            // dynamic batch boundary
	KindRetry           = "retry"            // client op attempt retried
	KindOpError         = "op-error"         // client op failed after retries
	KindHealth          = "health"           // health model changed an agent's status
	KindFault           = "fault"            // injected fault observed (flight dump, kill)
	KindProfile         = "profile-captured" // profile artifact committed to the store
)

// MaxFields is the per-record key-value capacity. Fields live inline in
// the Record (no per-event slice), which is what keeps Emit free of heap
// allocation: the variadic argument never escapes.
const MaxFields = 4

// Field is one key-value detail on an event: either a uint64 or a
// string, tagged. Construct with U and S.
type Field struct {
	Key   string
	Str   string
	U64   uint64
	IsStr bool
}

// U returns a numeric field.
func U(key string, v uint64) Field { return Field{Key: key, U64: v} }

// S returns a string field.
func S(key, v string) Field { return Field{Key: key, Str: v, IsStr: true} }

// Value renders the field's value as a string (formats numerics).
func (f Field) Value() string {
	if f.IsStr {
		return f.Str
	}
	return strconv.FormatUint(f.U64, 10)
}

// Record is one journalled event. Time is unix nanoseconds so records
// from different participants land on one absolute axis; TraceHi/TraceLo
// link the event into the same causal timeline as the PR 5 spans; Seq is
// assigned by the coordinator timeline on merge (zero until then).
type Record struct {
	Seq     uint64
	Time    int64
	Level   Level
	Kind    string
	Proc    string
	TraceHi uint64
	TraceLo uint64
	RunID   uint32
	Step    uint32
	NFields uint8
	Fields  [MaxFields]Field
}

// Field returns the value of the named field and whether it is present.
func (r *Record) Field(key string) (Field, bool) {
	for i := 0; i < int(r.NFields); i++ {
		if r.Fields[i].Key == key {
			return r.Fields[i], true
		}
	}
	return Field{}, false
}

// maxPending bounds the event backlog a Journal holds between shipping
// opportunities (the lossy TMetric tick). When a participant outruns the
// cadence — or the coordinator is unreachable — new events are dropped
// and counted rather than growing the heap. Control-plane events are
// rare, so in practice this only trips under injected faults.
const maxPending = 1024

// Journal records events for one participant: an always-on bounded ring
// (the local history) plus a pending batch awaiting shipment. All
// methods are safe on a nil receiver; a Journal is safe for concurrent
// use.
type Journal struct {
	cfg  Config
	mu   sync.Mutex
	proc string

	ring    []Record
	next    int
	total   uint64
	pending []Record
	dropped atomic.Uint64
}

// NewJournal returns a Journal for the named participant, or nil when
// cfg disables events (the nil Journal is the zero-cost off switch).
func NewJournal(proc string, cfg Config) *Journal {
	if !cfg.Enabled {
		return nil
	}
	cfg = cfg.withDefaults()
	return &Journal{cfg: cfg, proc: proc, ring: make([]Record, cfg.Ring)}
}

// Enabled reports whether j records anything.
func (j *Journal) Enabled() bool { return j != nil }

// Proc returns the participant name events are attributed to.
func (j *Journal) Proc() string {
	if j == nil {
		return ""
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.proc
}

// SetProc renames the participant. Call before events flow (agents learn
// their ID only once the join reply lands).
func (j *Journal) SetProc(proc string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.proc = proc
	j.mu.Unlock()
}

// Dropped returns how many events were discarded because the pending
// batch was full — exported as a backpressure counter.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	return j.dropped.Load()
}

// Emit records one event. ctx carries the trace correlation (zero when
// the decision happened outside any traced run). At most MaxFields
// fields are kept; extras are dropped silently. On a nil Journal this is
// a single branch and allocates nothing — the variadic slice never
// escapes because fields are copied into the record's inline array.
func (j *Journal) Emit(level Level, kind string, ctx trace.SpanContext, fields ...Field) {
	if j == nil {
		return
	}
	rec := Record{
		Time:    time.Now().UnixNano(),
		Level:   level,
		Kind:    kind,
		TraceHi: ctx.TraceHi,
		TraceLo: ctx.TraceLo,
		RunID:   ctx.RunID,
		Step:    ctx.Step,
	}
	for i, f := range fields {
		if i >= MaxFields {
			break
		}
		rec.Fields[i] = f
		rec.NFields++
	}
	j.record(rec)
}

func (j *Journal) record(rec Record) {
	j.mu.Lock()
	rec.Proc = j.proc
	j.ring[j.next] = rec
	j.next = (j.next + 1) % len(j.ring)
	j.total++
	if len(j.pending) < maxPending {
		j.pending = append(j.pending, rec)
		j.mu.Unlock()
		return
	}
	j.mu.Unlock()
	j.dropped.Add(1)
}

// TakeBatch drains and returns the pending events (nil when there are
// none). Callers ship the result and must not retain it past that.
func (j *Journal) TakeBatch() []Record {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	b := j.pending
	j.pending = nil
	j.mu.Unlock()
	if len(b) == 0 {
		return nil
	}
	return b
}

// Snapshot returns the ring's contents, oldest first.
func (j *Journal) Snapshot() []Record {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := len(j.ring)
	if j.total < uint64(n) {
		n = int(j.total)
	}
	out := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, j.ring[(j.next-n+i+len(j.ring))%len(j.ring)])
	}
	return out
}

// Timeline is the coordinator's merged cluster history: a bounded ring
// of records from every participant, ordered by arrival, each stamped
// with a monotone sequence number that survives restart (the ring and
// the counter ride the coordinator checkpoint). Timeline is safe for
// concurrent use so metric gauges can scrape it off the event loop.
type Timeline struct {
	mu    sync.Mutex
	ring  []Record
	next  int
	total uint64
	seq   uint64
}

// NewTimeline returns a Timeline holding the most recent capacity
// records (DefaultTimeline when capacity is zero or negative).
func NewTimeline(capacity int) *Timeline {
	if capacity <= 0 {
		capacity = DefaultTimeline
	}
	return &Timeline{ring: make([]Record, capacity)}
}

// Append merges records into the timeline in order, assigning each a
// sequence number. The ring bounds memory: old history falls off, which
// is the documented lossiness (the timeline is an operator aid, not an
// audit ledger).
func (t *Timeline) Append(recs ...Record) {
	if t == nil || len(recs) == 0 {
		return
	}
	t.mu.Lock()
	for _, rec := range recs {
		t.seq++
		rec.Seq = t.seq
		t.ring[t.next] = rec
		t.next = (t.next + 1) % len(t.ring)
		t.total++
	}
	t.mu.Unlock()
}

// Seq returns the last assigned sequence number (the count of events
// ever merged, including those that have fallen off the ring).
func (t *Timeline) Seq() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Recent returns the newest n records, oldest first (all of them when
// n <= 0 or exceeds the retained history).
func (t *Timeline) Recent(n int) []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	held := len(t.ring)
	if t.total < uint64(held) {
		held = int(t.total)
	}
	if n <= 0 || n > held {
		n = held
	}
	out := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, t.ring[(t.next-n+i+len(t.ring))%len(t.ring)])
	}
	return out
}

// Restore replaces the timeline's contents from a checkpoint: the
// retained records (oldest first) and the sequence counter to resume
// from.
func (t *Timeline) Restore(recs []Record, seq uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	for i := range t.ring {
		t.ring[i] = Record{}
	}
	t.next = 0
	t.total = 0
	start := 0
	if len(recs) > len(t.ring) {
		start = len(recs) - len(t.ring)
	}
	for _, rec := range recs[start:] {
		t.ring[t.next] = rec
		t.next = (t.next + 1) % len(t.ring)
		t.total++
	}
	t.seq = seq
	t.mu.Unlock()
}

//go:build !race

package events

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false

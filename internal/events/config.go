package events

import (
	"os"
	"strconv"
)

// Config is the single switchboard for the structured event journal,
// following the trace.Config contract: every layer takes a *Config (nil
// means FromEnv) and honours the same fields.
//
//	Enabled  master switch for event journalling (per-participant rings,
//	         TEventBatch shipping, the coordinator timeline).
//	Ring     capacity of each participant's bounded journal ring.
//	Timeline capacity of the coordinator's merged cluster timeline (the
//	         durable view that rides the coordinator checkpoint).
type Config struct {
	Enabled  bool
	Ring     int
	Timeline int
}

// DefaultRing is the per-participant journal capacity when Config leaves
// Ring zero. Control-plane events are rare (joins, evictions, plans,
// checkpoints — not per-vertex traffic), so a few hundred records cover
// minutes of cluster history at tens of bytes each.
const DefaultRing = 256

// DefaultTimeline is the coordinator's merged-timeline capacity when
// Config leaves Timeline zero.
const DefaultTimeline = 1024

// FromEnv builds a Config from the environment:
//
//	ELGA_EVENTS=1          enable the event journal
//	ELGA_EVENTS_RING=n     per-participant ring capacity (default 256)
//	ELGA_EVENTS_TIMELINE=n coordinator timeline capacity (default 1024)
func FromEnv() Config {
	c := Config{Ring: DefaultRing, Timeline: DefaultTimeline}
	if os.Getenv("ELGA_EVENTS") != "" {
		c.Enabled = true
	}
	if v := os.Getenv("ELGA_EVENTS_RING"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			c.Ring = n
		}
	}
	if v := os.Getenv("ELGA_EVENTS_TIMELINE"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			c.Timeline = n
		}
	}
	return c
}

// withDefaults fills zero fields so a literal Config{Enabled: true}
// behaves like FromEnv with ELGA_EVENTS set.
func (c Config) withDefaults() Config {
	if c.Ring <= 0 {
		c.Ring = DefaultRing
	}
	if c.Timeline <= 0 {
		c.Timeline = DefaultTimeline
	}
	return c
}

// Resolve returns *c, or FromEnv() when c is nil — the contract every
// Options struct follows so "nil means environment" is uniform.
func Resolve(c *Config) Config {
	if c == nil {
		return FromEnv()
	}
	return *c
}

package checkpoint

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"elga/internal/graph"
	"elga/internal/wire"
)

func TestSegmentFramingRoundTrip(t *testing.T) {
	payload := []byte("hello checkpoint")
	kind, got, err := UnframeSegment(FrameSegment(wire.SegTail, payload))
	if err != nil {
		t.Fatal(err)
	}
	if kind != wire.SegTail || string(got) != string(payload) {
		t.Fatalf("round trip mangled: kind=%d payload=%q", kind, got)
	}
	// Empty payloads are legal (an idle agent's tail segment).
	if _, got, err := UnframeSegment(FrameSegment(wire.SegStates, nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty payload: %q %v", got, err)
	}
}

func TestSegmentFramingRejectsCorruption(t *testing.T) {
	frame := FrameSegment(wire.SegSealed, []byte("some sealed content"))

	// Truncation at every prefix must fail (short header or length
	// mismatch), never return garbage.
	for n := 0; n < len(frame); n++ {
		if _, _, err := UnframeSegment(frame[:n]); err == nil {
			t.Fatalf("truncated frame at %d accepted", n)
		}
	}
	// A flipped payload bit must fail the CRC.
	bad := append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 0x01
	if _, _, err := UnframeSegment(bad); err == nil {
		t.Fatal("bit-flipped payload accepted")
	}
	// A wrong magic must fail before anything else is trusted.
	bad = append([]byte(nil), frame...)
	bad[0] ^= 0xff
	if _, _, err := UnframeSegment(bad); err == nil {
		t.Fatal("wrong magic accepted")
	}
}

func TestDirSinkSegmentsAndManifests(t *testing.T) {
	sink, err := NewDirSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("segment payload")
	name := SegmentName(wire.SegStates, payload)
	if sink.HasSegment(name) {
		t.Fatal("segment exists before write")
	}
	if err := sink.WriteSegment(name, wire.SegStates, payload); err != nil {
		t.Fatal(err)
	}
	if !sink.HasSegment(name) {
		t.Fatal("segment missing after write")
	}
	kind, got, err := sink.ReadSegment(name)
	if err != nil || kind != wire.SegStates || string(got) != string(payload) {
		t.Fatalf("segment read back wrong: kind=%d payload=%q err=%v", kind, got, err)
	}

	if _, err := sink.ReadManifest("agent-0"); !os.IsNotExist(err) {
		t.Fatalf("missing manifest error = %v, want not-exist", err)
	}
	man := []byte("manifest bytes")
	if err := sink.WriteManifest("agent-0", man); err != nil {
		t.Fatal(err)
	}
	got, err = sink.ReadManifest("agent-0")
	if err != nil || string(got) != string(man) {
		t.Fatalf("manifest read back wrong: %q %v", got, err)
	}
}

// snapshotStore builds and synchronously commits one snapshot of st.
func snapshotStore(t *testing.T, sink Sink, key string, st *graph.Store, states []wire.VertexState, seq uint64) {
	t.Helper()
	w := NewWriter(sink, key)
	defer w.Close()
	snapshotWith(t, w, st, states, seq)
}

func snapshotWith(t *testing.T, w *Writer, st *graph.Store, states []wire.VertexState, seq uint64) {
	t.Helper()
	prev, prevGen := w.LastSealedRef()
	snap := &Snapshot{
		Meta:     wire.CheckpointMeta{Key: w.key, Seq: seq, SealedGen: st.Compactions()},
		Segments: BuildSegments(st, states, nil, prev, prevGen),
	}
	if !w.TrySubmit(snap) {
		t.Fatal("writer busy on first submit")
	}
}

// compareStores asserts observational equivalence: same vertices, same
// ascending neighbour lists in both directions.
func compareStores(t *testing.T, seed int64, a, b *graph.Store) {
	t.Helper()
	av, bv := a.VertexList(), b.VertexList()
	if len(av) != len(bv) {
		t.Fatalf("seed %d: vertex count %d != %d (%v vs %v)", seed, len(av), len(bv), av, bv)
	}
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("seed %d: vertex list diverges at %d: %d != %d", seed, i, av[i], bv[i])
		}
	}
	for _, v := range av {
		ao, ai := a.Degree(v)
		bo, bi := b.Degree(v)
		if ao != bo || ai != bi {
			t.Fatalf("seed %d: degree(%d): (%d,%d) != (%d,%d)", seed, v, ao, ai, bo, bi)
		}
		aOut, bOut := a.AppendOut(v, nil), b.AppendOut(v, nil)
		for i := range aOut {
			if aOut[i] != bOut[i] {
				t.Fatalf("seed %d: out[%d] of %d: %d != %d", seed, i, v, aOut[i], bOut[i])
			}
		}
		aIn, bIn := a.AppendIn(v, nil), b.AppendIn(v, nil)
		for i := range aIn {
			if aIn[i] != bIn[i] {
				t.Fatalf("seed %d: in[%d] of %d: %d != %d", seed, i, v, aIn[i], bIn[i])
			}
		}
	}
}

// TestCheckpointRestoreEquivalenceProperty drives a store through
// randomized insert/delete/compact sequences, snapshots it, restores into
// a fresh store, and asserts observational equivalence — across sealed
// generations, delete-logged sealed entries, and tail-only topology.
func TestCheckpointRestoreEquivalenceProperty(t *testing.T) {
	const (
		seeds    = 15
		opsPer   = 500
		universe = 24
	)
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		st := graph.NewStore()
		st.SetCompactMin(1 + rng.Intn(16))
		for op := 0; op < opsPer; op++ {
			u := graph.VertexID(rng.Intn(universe))
			v := graph.VertexID(rng.Intn(universe))
			dir := graph.Out
			if rng.Intn(2) == 0 {
				dir = graph.In
			}
			if rng.Intn(3) == 0 {
				st.RemoveEdge(u, v, dir)
			} else {
				st.AddEdge(u, v, dir)
			}
			if rng.Intn(29) == 0 {
				st.Compact()
			}
		}

		sink, err := NewDirSink(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		snapshotStore(t, sink, "prop", st, nil, 1)
		state, err := Load(sink, "prop")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if state == nil {
			t.Fatalf("seed %d: no state restored", seed)
		}
		restored := graph.NewStore()
		state.ApplyToStore(restored)
		compareStores(t, seed, st, restored)
	}
}

// TestLoadMissingManifestIsColdStart distinguishes "never checkpointed"
// (nil, nil) from a damaged sink (error).
func TestLoadMissingManifestIsColdStart(t *testing.T) {
	sink, err := NewDirSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st, err := Load(sink, "never")
	if st != nil || err != nil {
		t.Fatalf("cold start: state=%v err=%v, want nil,nil", st, err)
	}
}

// TestLoadRejectsDamage corrupts durable files and asserts Load fails
// loudly instead of restoring garbage.
func TestLoadRejectsDamage(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewDirSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := graph.NewStore()
	st.AddEdge(1, 2, graph.Out)
	st.AddEdge(2, 3, graph.In)
	snapshotStore(t, sink, "victim", st, nil, 1)
	if _, err := Load(sink, "victim"); err != nil {
		t.Fatalf("pristine load failed: %v", err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "segments", "*"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments written: %v %v", segs, err)
	}
	// Flip one byte in every segment in turn; each corruption must be
	// detected (framing CRC or the manifest's independent ref check).
	for _, path := range segs {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == segHeaderLen {
			continue // empty payload: nothing to flip without resizing
		}
		bad := append([]byte(nil), data...)
		bad[len(bad)-1] ^= 0x01
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(sink, "victim"); err == nil {
			t.Fatalf("corrupted %s accepted", filepath.Base(path))
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A missing segment must fail even with a pristine manifest.
	if err := os.Rename(segs[0], segs[0]+".gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(sink, "victim"); err == nil {
		t.Fatal("missing segment accepted")
	}
	if err := os.Rename(segs[0]+".gone", segs[0]); err != nil {
		t.Fatal(err)
	}
	// A truncated manifest must fail its own framing.
	manPath := filepath.Join(dir, "victim.manifest")
	man, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manPath, man[:len(man)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(sink, "victim"); err == nil {
		t.Fatal("truncated manifest accepted")
	}
}

// TestSealedSegmentDedup checks the incremental fast path: consecutive
// snapshots between compactions reuse the sealed segment's content
// address instead of rewriting it, so only tail/state bytes hit the sink.
func TestSealedSegmentDedup(t *testing.T) {
	sink, err := NewDirSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st := graph.NewStore()
	st.SetCompactMin(1)
	for i := 0; i < 200; i++ {
		st.AddEdge(graph.VertexID(i%20), graph.VertexID(i), graph.Out)
	}
	st.Compact()

	w := NewWriter(sink, "dedup")
	snapshotWith(t, w, st, nil, 1)
	w.Close() // drain so LastSealedRef is published
	_, _, _, bytesAfterFirst := w.Stats()
	if bytesAfterFirst == 0 {
		t.Fatal("first snapshot wrote nothing")
	}
	ref, gen := w.LastSealedRef()
	if ref == nil || gen != st.Compactions() {
		t.Fatalf("sealed ref not published: %v gen=%d", ref, gen)
	}

	// Same generation: the builder must carry the ref forward without
	// re-encoding the sealed CSR.
	segs := BuildSegments(st, nil, nil, ref, gen)
	if segs[0].Reuse == nil || segs[0].Reuse.Name != ref.Name {
		t.Fatalf("sealed segment not reused: %+v", segs[0])
	}

	w2 := NewWriter(sink, "dedup")
	snap := &Snapshot{Meta: wire.CheckpointMeta{Key: "dedup", Seq: 2, SealedGen: gen}, Segments: segs}
	if !w2.TrySubmit(snap) {
		t.Fatal("second submit refused")
	}
	w2.Close()
	_, _, _, bytesSecond := w2.Stats()
	if bytesSecond >= bytesAfterFirst {
		t.Fatalf("second snapshot rewrote sealed data: %d bytes (first wrote %d)", bytesSecond, bytesAfterFirst)
	}

	// After another compaction the generation moves and the sealed
	// segment is re-encoded with a new address.
	st.AddEdge(999, 1000, graph.Out)
	st.Compact()
	segs = BuildSegments(st, nil, nil, ref, gen)
	if segs[0].Reuse != nil {
		t.Fatal("stale sealed ref reused across a compaction")
	}
	w3 := NewWriter(sink, "dedup")
	if !w3.TrySubmit(&Snapshot{Meta: wire.CheckpointMeta{Key: "dedup", Seq: 3, SealedGen: st.Compactions()}, Segments: segs}) {
		t.Fatal("third submit refused")
	}
	w3.Close()

	// Restore still round-trips through the deduped manifest chain.
	state, err := Load(sink, "dedup")
	if err != nil || state == nil {
		t.Fatalf("load after dedup: %v %v", state, err)
	}
	restored := graph.NewStore()
	state.ApplyToStore(restored)
	compareStores(t, -1, st, restored)
}

// TestWriterDropsWhenBusy checks the backpressure contract: a snapshot
// submitted while the writer is mid-commit is dropped and counted, never
// queued without bound.
func TestWriterDropsWhenBusy(t *testing.T) {
	sink, err := NewDirSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(sink, "busy")
	st := graph.NewStore()
	st.AddEdge(1, 2, graph.Out)
	submitted, dropped := 0, 0
	for i := 0; i < 64; i++ {
		snap := &Snapshot{
			Meta:     wire.CheckpointMeta{Key: "busy", Seq: uint64(i + 1)},
			Segments: BuildSegments(st, nil, nil, nil, 0),
		}
		if w.TrySubmit(snap) {
			submitted++
		} else {
			dropped++
		}
	}
	w.Close()
	count, drops, errs, _ := w.Stats()
	if errs != 0 {
		t.Fatalf("%d sink errors", errs)
	}
	if int(count) != submitted || int(drops) != dropped {
		t.Fatalf("stats (%d committed, %d dropped) disagree with submits (%d, %d)",
			count, drops, submitted, dropped)
	}
	if count == 0 {
		t.Fatal("nothing committed")
	}
}

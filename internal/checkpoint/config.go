// Package checkpoint implements durable incremental checkpoint/restore
// for agents and the coordinator. A snapshot is a manifest plus a set of
// content-addressed segments written to a pluggable Sink; segment
// payloads ride the same wire encoding as migration shipments, so disk
// and network never disagree about the format. The sealed-CSR segment is
// stable between store compactions and dedups by content address, which
// is what makes the checkpoints incremental: a cadence tick between
// compactions rewrites only the delta tail and the vertex states.
//
// Durability enters the system through one surface: checkpoint.Config,
// threaded as cluster.Options.Durability / agent.Options.Checkpoint /
// directory.Options.Checkpoint, with env overrides (ELGA_CKPT*) and flag
// registration following the trace.Config pattern.
package checkpoint

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"
)

// Config tunes durable checkpointing. The zero value is disabled.
type Config struct {
	// Enabled is the master switch. Disabled costs one predicted branch
	// at each trigger site.
	Enabled bool
	// Dir is the durable root directory of the local sink. Required
	// when Enabled.
	Dir string
	// Key is the participant's stable durable identity ("agent-0",
	// "coordinator"). It survives restarts that change live agent IDs;
	// a restarting process restores the manifest written under its Key.
	// The cluster harness assigns per-slot keys automatically.
	Key string
	// EverySteps checkpoints every N completed compute supersteps
	// (0 selects DefaultEverySteps). Batch boundaries and run completion
	// always checkpoint when Enabled.
	EverySteps int
	// Interval additionally checkpoints on a wall-clock cadence while
	// idle (0 disables the timer; supersteps and batch boundaries still
	// trigger).
	Interval time.Duration
}

// DefaultEverySteps is the superstep cadence when Config leaves
// EverySteps zero: frequent enough that a mid-run kill loses only a few
// supersteps of progress, rare enough that encoding stays off the
// critical path.
const DefaultEverySteps = 4

// FromEnv builds a Config from the environment:
//
//	ELGA_CKPT=1          enable durable checkpointing
//	ELGA_CKPT_DIR=path   sink root directory
//	ELGA_CKPT_KEY=key    stable durable identity
//	ELGA_CKPT_STEPS=n    superstep cadence (default 4)
//	ELGA_CKPT_INTERVAL=d wall-clock cadence (Go duration, default off)
func FromEnv() Config {
	c := Config{EverySteps: DefaultEverySteps}
	if os.Getenv("ELGA_CKPT") != "" {
		c.Enabled = true
	}
	c.Dir = os.Getenv("ELGA_CKPT_DIR")
	c.Key = os.Getenv("ELGA_CKPT_KEY")
	if v := os.Getenv("ELGA_CKPT_STEPS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			c.EverySteps = n
		}
	}
	if v := os.Getenv("ELGA_CKPT_INTERVAL"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			c.Interval = d
		}
	}
	return c
}

// withDefaults fills zero fields so a literal Config{Enabled: true,
// Dir: ...} behaves like FromEnv with ELGA_CKPT set.
func (c Config) withDefaults() Config {
	if c.EverySteps <= 0 {
		c.EverySteps = DefaultEverySteps
	}
	if c.Interval < 0 {
		c.Interval = 0
	}
	return c
}

// Resolve returns *c default-filled, or FromEnv() when c is nil — the
// same "nil means environment" contract trace.Config follows.
func Resolve(c *Config) Config {
	if c == nil {
		return FromEnv().withDefaults()
	}
	return c.withDefaults()
}

// WithKey returns a copy of c with the durable identity set (harness
// helper for assigning per-slot keys from one shared Config).
func (c Config) WithKey(key string) Config {
	c.Key = key
	return c
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.Dir == "" {
		return fmt.Errorf("checkpoint: enabled without a sink directory")
	}
	if c.EverySteps < 0 {
		return fmt.Errorf("checkpoint: superstep cadence must be non-negative, got %d", c.EverySteps)
	}
	if c.Interval < 0 {
		return fmt.Errorf("checkpoint: interval must be non-negative, got %v", c.Interval)
	}
	return nil
}

// RegisterFlags registers the durability flags on fs, defaulting from c
// (callers seed c with FromEnv so flags and env funnel into one Config).
func (c *Config) RegisterFlags(fs *flag.FlagSet) {
	fs.BoolVar(&c.Enabled, "durable", c.Enabled, "enable durable checkpointing (also ELGA_CKPT=1)")
	fs.StringVar(&c.Dir, "ckpt-dir", c.Dir, "checkpoint sink directory (required with -durable)")
	fs.StringVar(&c.Key, "ckpt-key", c.Key, "stable durable identity for restore-on-restart (default derived per role)")
	fs.IntVar(&c.EverySteps, "ckpt-steps", c.EverySteps, "checkpoint every N compute supersteps")
	fs.DurationVar(&c.Interval, "ckpt-interval", c.Interval, "additional wall-clock checkpoint cadence (0 = off)")
}

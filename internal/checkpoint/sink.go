package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Sink is where snapshots become durable. Implementations must make
// WriteManifest atomic (a reader sees the old manifest or the new one,
// never a torn write): the manifest is the commit point of a checkpoint.
type Sink interface {
	// HasSegment reports whether a segment with this content address is
	// already durable, letting writers skip unchanged sealed segments.
	HasSegment(name string) bool
	// WriteSegment makes one content-addressed segment durable. Writing
	// a name that already exists is a no-op (content addresses never
	// collide with different payloads).
	WriteSegment(name string, kind uint8, payload []byte) error
	// ReadSegment returns the payload of a segment, verifying its
	// framing and CRC.
	ReadSegment(name string) (kind uint8, payload []byte, err error)
	// WriteManifest atomically replaces key's manifest.
	WriteManifest(key string, data []byte) error
	// ReadManifest returns key's manifest, or os.ErrNotExist.
	ReadManifest(key string) ([]byte, error)
}

// SegmentName returns the content address of a segment: the kind and the
// leading 16 bytes of the payload's SHA-256, hex-encoded. Identical
// content always maps to the same name, which is what dedups the sealed
// segment across checkpoints between compactions.
func SegmentName(kind uint8, payload []byte) string {
	sum := sha256.Sum256(payload)
	return fmt.Sprintf("%02x-%s", kind, hex.EncodeToString(sum[:16]))
}

// Segment file framing: magic, kind, payload length, CRC-32 (IEEE) of
// the payload, then the payload. The frame is validated on read so a
// truncated or bit-flipped segment fails loudly instead of restoring
// garbage.
const (
	segMagic     = 0x454C4741 // "ELGA"
	segHeaderLen = 4 + 1 + 4 + 4
	// maxSegment bounds a single segment payload (matches the wire
	// layer's frame guard).
	maxSegment = 64 << 20
)

// FrameSegment prepends the durable segment header to payload.
func FrameSegment(kind uint8, payload []byte) []byte {
	buf := make([]byte, 0, segHeaderLen+len(payload))
	buf = binary.LittleEndian.AppendUint32(buf, segMagic)
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// UnframeSegment validates a durable segment frame and returns its kind
// and payload (aliasing data).
func UnframeSegment(data []byte) (kind uint8, payload []byte, err error) {
	if len(data) < segHeaderLen {
		return 0, nil, fmt.Errorf("checkpoint: segment short: %d bytes", len(data))
	}
	if binary.LittleEndian.Uint32(data) != segMagic {
		return 0, nil, fmt.Errorf("checkpoint: segment magic mismatch")
	}
	kind = data[4]
	n := int(binary.LittleEndian.Uint32(data[5:]))
	if n > maxSegment || len(data) != segHeaderLen+n {
		return 0, nil, fmt.Errorf("checkpoint: segment length %d does not match frame (%d bytes on disk)", n, len(data))
	}
	payload = data[segHeaderLen:]
	if crc := crc32.ChecksumIEEE(payload); crc != binary.LittleEndian.Uint32(data[9:]) {
		return 0, nil, fmt.Errorf("checkpoint: segment CRC mismatch")
	}
	return kind, payload, nil
}

// DirSink stores segments and manifests under a local directory:
//
//	<dir>/segments/<content-address>   framed segment payloads
//	<dir>/<key>.manifest               per-participant manifest roots
//
// Manifests are replaced atomically via write-to-temp + rename, so a
// kill at any moment leaves either the previous checkpoint or the new
// one — never a torn root.
type DirSink struct {
	dir string
}

// NewDirSink creates (if needed) and opens a directory sink.
func NewDirSink(dir string) (*DirSink, error) {
	if err := os.MkdirAll(filepath.Join(dir, "segments"), 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &DirSink{dir: dir}, nil
}

// Dir returns the sink's root directory.
func (s *DirSink) Dir() string { return s.dir }

func (s *DirSink) segPath(name string) string {
	return filepath.Join(s.dir, "segments", filepath.Base(name))
}

// HasSegment reports whether the content address is already durable.
func (s *DirSink) HasSegment(name string) bool {
	_, err := os.Stat(s.segPath(name))
	return err == nil
}

// WriteSegment makes one framed segment durable (temp + rename so a
// concurrent reader never sees a partial segment).
func (s *DirSink) WriteSegment(name string, kind uint8, payload []byte) error {
	path := s.segPath(name)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, FrameSegment(kind, payload), 0o644); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// ReadSegment loads and validates one segment.
func (s *DirSink) ReadSegment(name string) (uint8, []byte, error) {
	data, err := os.ReadFile(s.segPath(name))
	if err != nil {
		return 0, nil, fmt.Errorf("checkpoint: %w", err)
	}
	return UnframeSegment(data)
}

func (s *DirSink) manifestPath(key string) string {
	return filepath.Join(s.dir, filepath.Base(key)+".manifest")
}

// WriteManifest atomically replaces key's manifest root. The manifest
// rides the same framing as segments (kind 0) so truncation is detected.
func (s *DirSink) WriteManifest(key string, data []byte) error {
	path := s.manifestPath(key)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, FrameSegment(0, data), 0o644); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// ReadManifest returns key's manifest payload, or os.ErrNotExist when
// the participant has never checkpointed.
func (s *DirSink) ReadManifest(key string) ([]byte, error) {
	data, err := os.ReadFile(s.manifestPath(key))
	if err != nil {
		return nil, err
	}
	_, payload, err := UnframeSegment(data)
	return payload, err
}

// Open builds the sink a Config describes (nil when disabled).
func Open(cfg Config) (Sink, error) {
	if !cfg.Enabled {
		return nil, nil
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return NewDirSink(cfg.Dir)
}

package checkpoint

import (
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"elga/internal/graph"
	"elga/internal/wire"
)

// Segment is one snapshot part before it is made durable: either a fresh
// payload to hash and write, or a reference carried forward from the
// previous manifest (the sealed-CSR fast path when the store's sealed
// generation is unchanged).
type Segment struct {
	Kind    uint8
	Payload []byte
	Reuse   *wire.SegmentRef
}

// Snapshot is one checkpoint ready for the background writer.
type Snapshot struct {
	Meta     wire.CheckpointMeta
	Segments []Segment
}

// BuildSegments serializes a store plus the owner's vertex states into
// snapshot segments. Edge topology rides the migration shipment encoding
// (wire.EdgeBatch): the sealed-CSR runs as one insert-only batch whose
// Epoch field carries the sealed generation, and the delta tail as a
// second batch of inserts and deletes. prevSealed, when its generation
// matches, skips re-encoding the sealed segment entirely and carries the
// previous content address forward — the incremental fast path.
func BuildSegments(st *graph.Store, states []wire.VertexState, marks []wire.MailboxWatermark, prevSealed *wire.SegmentRef, prevSealedGen uint64) []Segment {
	gen := st.Compactions()
	segs := make([]Segment, 0, 4)
	if prevSealed != nil && prevSealedGen == gen {
		segs = append(segs, Segment{Kind: wire.SegSealed, Reuse: prevSealed})
	} else {
		sealed := wire.EdgeBatch{Epoch: gen, Migration: true}
		st.SealedCopies(func(c graph.EdgeCopy) bool {
			sealed.Changes = append(sealed.Changes, wire.EdgeChange{
				Action: graph.Insert, Src: c.Src, Dst: c.Dst, Dir: c.Dir,
			})
			return true
		})
		segs = append(segs, Segment{Kind: wire.SegSealed, Payload: wire.EncodeEdgeBatch(&sealed)})
	}
	tail := wire.EdgeBatch{Epoch: gen, Migration: true}
	st.TailCopies(func(c graph.EdgeCopy, deleted bool) bool {
		act := graph.Insert
		if deleted {
			act = graph.Delete
		}
		tail.Changes = append(tail.Changes, wire.EdgeChange{
			Action: act, Src: c.Src, Dst: c.Dst, Dir: c.Dir,
		})
		return true
	})
	// Pinned zero-edge vertices survive as insert-less states so restore
	// can re-pin them; they already appear in states when the caller
	// tracks their values, so only the edge segments are topology.
	segs = append(segs, Segment{Kind: wire.SegTail, Payload: wire.EncodeEdgeBatch(&tail)})
	segs = append(segs, Segment{Kind: wire.SegStates, Payload: wire.EncodeEdgeBatch(&wire.EdgeBatch{States: states})})
	segs = append(segs, Segment{Kind: wire.SegMailbox, Payload: wire.AppendMailboxWatermarks(nil, marks)})
	return segs
}

// Writer makes snapshots durable off the event loop: triggers enqueue an
// encoded snapshot (cheap, single-threaded) and a background goroutine
// does the hashing, CRC, file I/O, and manifest commit. The queue holds
// one snapshot; a trigger that finds the writer busy is dropped and
// counted — the next cadence tick will capture strictly newer state, so
// dropping never loses more than one cadence of progress.
type Writer struct {
	sink Sink
	key  string

	ch     chan *Snapshot
	done   chan struct{}
	closed sync.Once

	count  atomic.Uint64 // snapshots committed
	drops  atomic.Uint64 // snapshots dropped on a busy writer
	errs   atomic.Uint64 // snapshots failed (sink errors)
	bytes  atomic.Uint64 // cumulative payload bytes written (post-dedup)
	lastNs atomic.Int64  // wall-clock nanos of the last durable commit
	last   atomic.Pointer[wire.CheckpointMark]
	sealed atomic.Pointer[sealedRef]
}

// sealedRef remembers the last committed sealed segment so the next
// build can carry its content address forward without re-encoding.
type sealedRef struct {
	ref wire.SegmentRef
	gen uint64
}

// NewWriter starts the background writer for one participant key.
func NewWriter(sink Sink, key string) *Writer {
	w := &Writer{sink: sink, key: key, ch: make(chan *Snapshot, 1), done: make(chan struct{})}
	go w.loop()
	return w
}

func (w *Writer) loop() {
	defer close(w.done)
	for snap := range w.ch {
		if err := w.commit(snap); err != nil {
			w.errs.Add(1)
			fmt.Fprintf(os.Stderr, "elga checkpoint: %s: %v\n", w.key, err)
			continue
		}
	}
}

// commit writes a snapshot's segments (deduplicating by content address)
// and atomically replaces the manifest.
func (w *Writer) commit(snap *Snapshot) error {
	var written uint64
	refs := make([]wire.SegmentRef, 0, len(snap.Segments))
	for _, seg := range snap.Segments {
		if seg.Reuse != nil {
			refs = append(refs, *seg.Reuse)
			continue
		}
		ref := wire.SegmentRef{
			Kind:   seg.Kind,
			Name:   SegmentName(seg.Kind, seg.Payload),
			Length: uint64(len(seg.Payload)),
			CRC:    crcOf(seg.Payload),
		}
		if !w.sink.HasSegment(ref.Name) {
			if err := w.sink.WriteSegment(ref.Name, seg.Kind, seg.Payload); err != nil {
				return err
			}
			written += ref.Length
		}
		refs = append(refs, ref)
	}
	man := wire.Manifest{Meta: snap.Meta, Segments: refs}
	if err := w.sink.WriteManifest(w.key, wire.EncodeManifest(&man)); err != nil {
		return err
	}
	w.count.Add(1)
	w.bytes.Add(written)
	w.lastNs.Store(time.Now().UnixNano())
	w.last.Store(&wire.CheckpointMark{Meta: snap.Meta, Bytes: written})
	for _, ref := range refs {
		if ref.Kind == wire.SegSealed {
			w.sealed.Store(&sealedRef{ref: ref, gen: snap.Meta.SealedGen})
			break
		}
	}
	return nil
}

// LastSealedRef returns the sealed-segment reference and generation of
// the last committed snapshot (nil before the first). A builder whose
// store is still on that generation reuses the reference instead of
// re-encoding the sealed CSR — the incremental fast path. A stale read
// (the writer mid-commit) only costs a redundant encode; content
// addressing dedups the write.
func (w *Writer) LastSealedRef() (*wire.SegmentRef, uint64) {
	s := w.sealed.Load()
	if s == nil {
		return nil, 0
	}
	return &s.ref, s.gen
}

// TrySubmit hands a snapshot to the background writer, reporting false
// (and counting a drop) when the writer is still busy with the previous
// one.
func (w *Writer) TrySubmit(snap *Snapshot) bool {
	select {
	case w.ch <- snap:
		return true
	default:
		w.drops.Add(1)
		return false
	}
}

// LastMark returns the cut stamp of the most recent durable snapshot, or
// nil before the first commit. Safe from any goroutine.
func (w *Writer) LastMark() *wire.CheckpointMark { return w.last.Load() }

// AgeSeconds returns seconds since the last durable commit (0 before the
// first). Safe from any goroutine (metric scrapes).
func (w *Writer) AgeSeconds() float64 {
	ns := w.lastNs.Load()
	if ns == 0 {
		return 0
	}
	return time.Since(time.Unix(0, ns)).Seconds()
}

// Stats returns committed snapshots, busy drops, sink errors, and
// cumulative post-dedup payload bytes. Safe from any goroutine.
func (w *Writer) Stats() (count, drops, errs, bytes uint64) {
	return w.count.Load(), w.drops.Load(), w.errs.Load(), w.bytes.Load()
}

// Close drains the queue and stops the writer; the last submitted
// snapshot is committed before Close returns.
func (w *Writer) Close() {
	w.closed.Do(func() { close(w.ch) })
	<-w.done
}

// State is a decoded restore: the manifest's cut stamp plus the segment
// contents. Mailbox watermarks are informational — restores drop them
// (see DESIGN.md "Durability" for why replay would double-deliver).
type State struct {
	Meta       wire.CheckpointMeta
	Sealed     []wire.EdgeChange
	Tail       []wire.EdgeChange
	States     []wire.VertexState
	Watermarks []wire.MailboxWatermark
	// Coord is the coordinator's recovered state (nil in agent
	// snapshots).
	Coord *wire.CoordState
}

// Load reads and validates key's snapshot from the sink. It returns
// (nil, nil) when the participant has never checkpointed, and an error
// when a manifest exists but any segment is missing, truncated, or fails
// its CRC — a damaged checkpoint must fail loudly, not restore garbage.
func Load(sink Sink, key string) (*State, error) {
	data, err := sink.ReadManifest(key)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	man, err := wire.DecodeManifest(data)
	if err != nil {
		return nil, err
	}
	st := &State{Meta: man.Meta}
	for _, ref := range man.Segments {
		kind, payload, err := sink.ReadSegment(ref.Name)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: segment %s (%s): %w", ref.Name, wire.SegmentKindName(ref.Kind), err)
		}
		if kind != ref.Kind || uint64(len(payload)) != ref.Length || crcOf(payload) != ref.CRC {
			return nil, fmt.Errorf("checkpoint: segment %s does not match its manifest entry", ref.Name)
		}
		switch ref.Kind {
		case wire.SegSealed:
			b, err := wire.DecodeEdgeBatch(payload)
			if err != nil {
				return nil, err
			}
			st.Sealed = b.Changes
		case wire.SegTail:
			b, err := wire.DecodeEdgeBatch(payload)
			if err != nil {
				return nil, err
			}
			st.Tail = b.Changes
		case wire.SegStates:
			b, err := wire.DecodeEdgeBatch(payload)
			if err != nil {
				return nil, err
			}
			st.States = b.States
		case wire.SegMailbox:
			ws, err := wire.DecodeMailboxWatermarks(payload)
			if err != nil {
				return nil, err
			}
			st.Watermarks = ws
		case wire.SegCoord:
			cs, err := wire.DecodeCoordState(payload)
			if err != nil {
				return nil, err
			}
			st.Coord = cs
		}
	}
	return st, nil
}

// ApplyToStore rebuilds edge topology into st: sealed inserts first (raw
// sealed runs include delete-logged entries), then the tail replay whose
// deletes cancel them, then one compaction so the restored store starts
// from a folded sealed generation. Equivalence with the original is
// observational (same vertices, neighbors, degrees), not byte-layout
// identity.
func (s *State) ApplyToStore(st *graph.Store) {
	for _, c := range s.Sealed {
		st.AddEdge(c.Src, c.Dst, c.Dir)
	}
	for _, c := range s.Tail {
		if c.Action == graph.Delete {
			st.RemoveEdge(c.Src, c.Dst, c.Dir)
		} else {
			st.AddEdge(c.Src, c.Dst, c.Dir)
		}
	}
	st.Compact()
}

func crcOf(payload []byte) uint32 { return crc32.ChecksumIEEE(payload) }

package gen

import (
	"math/rand"

	"elga/internal/graph"
)

// CommunityParams shape the planted-partition generator.
type CommunityParams struct {
	// N is the vertex count; vertices 0..N-1 are striped round-robin into
	// Communities blocks, so consecutive IDs land in different blocks and
	// hash placement cannot accidentally align with community structure.
	N int
	// Communities is the number of planted blocks.
	Communities int
	// Edges is the number of edge attempts (self-loops and duplicates are
	// dropped, so the result can be slightly smaller).
	Edges int
	// PIntra is the probability an edge stays inside its source's block;
	// the rest go to a uniformly random other block. 0.9 gives strongly
	// clustered communities, 1/Communities degrades to uniform.
	PIntra float64
}

// DefaultCommunityParams returns a strongly clustered 16-community shape.
func DefaultCommunityParams() CommunityParams {
	return CommunityParams{N: 1 << 16, Communities: 16, Edges: 1 << 18, PIntra: 0.9}
}

// Community generates a planted-partition (stochastic block model) graph:
// most edges fall inside a vertex's block, a controlled fraction crosses
// blocks. It is the natural adversary-turned-friend for locality-aware
// repartitioning — hash placement scatters each block across all agents,
// so almost every edge starts out cross-agent, while an ideal placement
// makes PIntra of them local. Deterministic in seed.
func Community(p CommunityParams, seed int64) graph.EdgeList {
	if p.N <= 0 || p.Communities <= 0 || p.Edges <= 0 {
		return nil
	}
	if p.Communities > p.N {
		p.Communities = p.N
	}
	rng := rand.New(rand.NewSource(seed))
	c := p.Communities
	el := make(graph.EdgeList, 0, p.Edges)
	for i := 0; i < p.Edges; i++ {
		u := rng.Intn(p.N)
		blk := u % c // round-robin striping: block = id mod c
		var v int
		if rng.Float64() < p.PIntra {
			// Same block: sample a member index, map back to a vertex ID.
			members := (p.N-blk-1)/c + 1
			v = blk + rng.Intn(members)*c
		} else {
			other := rng.Intn(c - 1)
			if other >= blk {
				other++
			}
			members := (p.N-other-1)/c + 1
			v = other + rng.Intn(members)*c
		}
		if u == v {
			continue
		}
		el = append(el, graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)})
	}
	return el.Dedupe()
}

// CommunityOf returns the planted block of vertex v under the striping
// Community uses — handy for tests asserting cut quality.
func CommunityOf(v graph.VertexID, communities int) int {
	return int(uint64(v) % uint64(communities))
}

// Package gen provides the synthetic graph generators the reproduction
// uses in place of the paper's datasets: an R-MAT generator (the Graph500
// family, Table 2's Graph500-30), a BTER-style block generator that
// scales a measured degree/clustering profile (the role A-BTER plays in
// §4.4), uniform and preferential-attachment generators, and the
// dynamic-batch utilities that model graph change the way the paper does
// ("first deleting a random sample of edges and second adding the sample
// back in, as a batch").
//
// All generators are deterministic in their seed.
package gen

import (
	"math"
	"math/rand"
	"sort"

	"elga/internal/graph"
)

// RMATParams are the R-MAT quadrant probabilities; Graph500 uses
// (0.57, 0.19, 0.19, 0.05).
type RMATParams struct {
	A, B, C float64 // D = 1-A-B-C
}

// Graph500Params returns the standard Graph500 R-MAT parameters.
func Graph500Params() RMATParams { return RMATParams{A: 0.57, B: 0.19, C: 0.19} }

// RMAT generates 2^scale vertices and approximately m directed edges with
// the recursive-matrix skew of Chakrabarti et al. Self-loops and
// duplicates are removed, so the result can be slightly smaller than m.
func RMAT(scale int, m int, p RMATParams, seed int64) graph.EdgeList {
	rng := rand.New(rand.NewSource(seed))
	n := uint64(1) << uint(scale)
	el := make(graph.EdgeList, 0, m)
	for i := 0; i < m; i++ {
		var u, v uint64
		for bit := uint(0); bit < uint(scale); bit++ {
			r := rng.Float64()
			switch {
			case r < p.A:
				// upper-left: no bits set
			case r < p.A+p.B:
				v |= 1 << bit
			case r < p.A+p.B+p.C:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		_ = n
		el = append(el, graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)})
	}
	return el.Dedupe()
}

// Uniform generates m uniformly random directed edges over n vertices
// (Erdős–Rényi G(n,m) flavour), without self-loops, deduplicated.
func Uniform(n, m int, seed int64) graph.EdgeList {
	rng := rand.New(rand.NewSource(seed))
	el := make(graph.EdgeList, 0, m)
	for i := 0; i < m; i++ {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		if u == v {
			continue
		}
		el = append(el, graph.Edge{Src: u, Dst: v})
	}
	return el.Dedupe()
}

// PreferentialAttachment generates a Barabási–Albert-style graph: each new
// vertex attaches k edges to endpoints sampled proportionally to degree.
// Social-network stand-in with a heavy-tailed degree distribution.
func PreferentialAttachment(n, k int, seed int64) graph.EdgeList {
	if n < 2 || k < 1 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	var el graph.EdgeList
	// endpoint pool: each edge contributes both endpoints, giving
	// degree-proportional sampling.
	pool := []graph.VertexID{0, 1}
	el = append(el, graph.Edge{Src: 1, Dst: 0})
	for v := 2; v < n; v++ {
		for e := 0; e < k; e++ {
			t := pool[rng.Intn(len(pool))]
			if graph.VertexID(v) == t {
				continue
			}
			el = append(el, graph.Edge{Src: graph.VertexID(v), Dst: t})
			pool = append(pool, graph.VertexID(v), t)
		}
	}
	return el.Dedupe()
}

// Profile captures the structural fingerprint BTER preserves: a degree
// distribution (degree -> vertex count) plus a global clustering target.
type Profile struct {
	// DegreeCounts[d] is the number of vertices with degree d.
	DegreeCounts map[int]int
	// Clustering is the mean local clustering coefficient target.
	Clustering float64
}

// MeasureProfile extracts a profile from an existing (undirected-view)
// edge list — the "takes an existing graph, computes degree and
// clustering coefficient distributions" step of A-BTER (§4.4).
func MeasureProfile(el graph.EdgeList) Profile {
	deg := map[graph.VertexID]int{}
	for _, e := range el {
		deg[e.Src]++
		deg[e.Dst]++
	}
	p := Profile{DegreeCounts: map[int]int{}, Clustering: estimateClustering(el)}
	for _, d := range deg {
		p.DegreeCounts[d]++
	}
	return p
}

// estimateClustering computes the mean local clustering coefficient over
// a bounded sample of vertices (exact for small graphs).
func estimateClustering(el graph.EdgeList) float64 {
	adj := map[graph.VertexID]map[graph.VertexID]bool{}
	add := func(a, b graph.VertexID) {
		m := adj[a]
		if m == nil {
			m = map[graph.VertexID]bool{}
			adj[a] = m
		}
		m[b] = true
	}
	for _, e := range el {
		if e.Src != e.Dst {
			add(e.Src, e.Dst)
			add(e.Dst, e.Src)
		}
	}
	verts := make([]graph.VertexID, 0, len(adj))
	for v := range adj {
		verts = append(verts, v)
	}
	sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
	const maxSample = 2000
	if len(verts) > maxSample {
		verts = verts[:maxSample]
	}
	total, counted := 0.0, 0
	for _, v := range verts {
		nbrs := make([]graph.VertexID, 0, len(adj[v]))
		for w := range adj[v] {
			nbrs = append(nbrs, w)
		}
		k := len(nbrs)
		if k < 2 {
			continue
		}
		links := 0
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if adj[nbrs[i]][nbrs[j]] {
					links++
				}
			}
		}
		total += 2 * float64(links) / float64(k*(k-1))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// BTER generates a graph whose degree distribution follows the profile
// scaled by the given factor, with clustered affinity blocks — the BTER
// construction (communities of similar-degree vertices densely wired,
// plus a Chung-Lu excess-degree phase). It is this repository's stand-in
// for A-BTER's "scaled up graphs that share the same distributions".
func BTER(p Profile, scale float64, seed int64) graph.EdgeList {
	rng := rand.New(rand.NewSource(seed))
	// Expand the degree sequence, scaled.
	var degrees []int
	degs := make([]int, 0, len(p.DegreeCounts))
	for d := range p.DegreeCounts {
		degs = append(degs, d)
	}
	sort.Ints(degs)
	for _, d := range degs {
		count := int(math.Round(float64(p.DegreeCounts[d]) * scale))
		for i := 0; i < count; i++ {
			degrees = append(degrees, d)
		}
	}
	n := len(degrees)
	if n < 2 {
		return nil
	}
	// Shuffle vertex identities so IDs do not correlate with degree.
	perm := rng.Perm(n)

	var el graph.EdgeList
	residual := make([]float64, n)

	// Phase 1: affinity blocks. Group vertices of similar degree into
	// blocks of size d+1 and wire each block as a dense community with
	// edge probability derived from the clustering target.
	rho := math.Cbrt(p.Clustering)
	if rho > 0.95 {
		rho = 0.95
	}
	i := 0
	for i < n {
		d := degrees[i]
		if d < 1 {
			i++
			continue
		}
		size := d + 1
		if i+size > n {
			size = n - i
		}
		if size >= 2 {
			for a := i; a < i+size; a++ {
				for b := a + 1; b < i+size; b++ {
					if rng.Float64() < rho {
						el = append(el, graph.Edge{
							Src: graph.VertexID(perm[a]),
							Dst: graph.VertexID(perm[b]),
						})
					}
				}
			}
		}
		for a := i; a < i+size; a++ {
			used := rho * float64(size-1)
			r := float64(degrees[a]) - used
			if r < 0 {
				r = 0
			}
			residual[a] = r
		}
		i += size
	}

	// Phase 2: Chung-Lu on residual degrees.
	totalResidual := 0.0
	for _, r := range residual {
		totalResidual += r
	}
	if totalResidual > 1 {
		// Sample endpoints proportional to residual degree.
		cum := make([]float64, n+1)
		for j := 0; j < n; j++ {
			cum[j+1] = cum[j] + residual[j]
		}
		sample := func() int {
			x := rng.Float64() * totalResidual
			lo, hi := 0, n
			for lo < hi {
				mid := (lo + hi) / 2
				if cum[mid+1] < x {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			return lo
		}
		m2 := int(totalResidual / 2)
		for e := 0; e < m2; e++ {
			a, b := sample(), sample()
			if a == b {
				continue
			}
			el = append(el, graph.Edge{
				Src: graph.VertexID(perm[a]),
				Dst: graph.VertexID(perm[b]),
			})
		}
	}
	return el.Dedupe()
}

// ScaledFamily returns the profile-preserving scale-ups of a base graph:
// the Figure 4 experiment (original, x1 synthetic, and larger scales).
func ScaledFamily(base graph.EdgeList, scales []float64, seed int64) []graph.EdgeList {
	p := MeasureProfile(base)
	out := make([]graph.EdgeList, 0, len(scales))
	for i, s := range scales {
		out = append(out, BTER(p, s, seed+int64(i)))
	}
	return out
}

// SampleBatch models the paper's dynamic workload (§4.4): it removes a
// random sample of k edges and returns the deletion batch, the re-insert
// batch, and the remaining graph.
func SampleBatch(el graph.EdgeList, k int, seed int64) (deletions, insertions graph.Batch, remaining graph.EdgeList) {
	if k > len(el) {
		k = len(el)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(el))
	sampleIdx := map[int]bool{}
	for _, i := range perm[:k] {
		sampleIdx[i] = true
	}
	for i, e := range el {
		if sampleIdx[i] {
			deletions = append(deletions, graph.Change{Action: graph.Delete, Src: e.Src, Dst: e.Dst})
			insertions = append(insertions, graph.Change{Action: graph.Insert, Src: e.Src, Dst: e.Dst})
		} else {
			remaining = append(remaining, e)
		}
	}
	return deletions, insertions, remaining
}

// Batches splits an insertion stream for el into count batches of equal
// size, the shape of Figure 15's 100-batch experiment.
func Batches(el graph.EdgeList, count int) []graph.Batch {
	if count <= 0 {
		return nil
	}
	out := make([]graph.Batch, 0, count)
	per := (len(el) + count - 1) / count
	for i := 0; i < len(el); i += per {
		end := i + per
		if end > len(el) {
			end = len(el)
		}
		out = append(out, el[i:end].Changes())
	}
	return out
}

// Stream replays an edge list as a change stream through fn, the
// "extended A-BTER to stream edge updates" pathway (§4.4). It stops on
// the first error.
func Stream(el graph.EdgeList, fn func(graph.Change) error) error {
	for _, e := range el {
		if err := fn(graph.Change{Action: graph.Insert, Src: e.Src, Dst: e.Dst}); err != nil {
			return err
		}
	}
	return nil
}

package gen

import (
	"testing"

	"elga/internal/graph"
)

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(10, 5000, Graph500Params(), 42)
	b := RMAT(10, 5000, Graph500Params(), 42)
	if len(a) != len(b) {
		t.Fatal("non-deterministic size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic edges")
		}
	}
	c := RMAT(10, 5000, Graph500Params(), 43)
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestRMATSkewed(t *testing.T) {
	el := RMAT(12, 20000, Graph500Params(), 7)
	degs := el.Degrees()
	max, sum, cnt := 0, 0, 0
	for _, d := range degs {
		if d > 0 {
			sum += d
			cnt++
		}
		if d > max {
			max = d
		}
	}
	mean := float64(sum) / float64(cnt)
	if float64(max) < 8*mean {
		t.Errorf("R-MAT not skewed: max %d vs mean %.1f", max, mean)
	}
	for _, e := range el {
		if e.Src == e.Dst {
			t.Fatal("self loop survived")
		}
		if uint64(e.Src) >= 1<<12 || uint64(e.Dst) >= 1<<12 {
			t.Fatal("vertex out of range")
		}
	}
}

func TestUniform(t *testing.T) {
	el := Uniform(100, 2000, 1)
	if len(el) == 0 {
		t.Fatal("empty")
	}
	degs := el.Degrees()
	max := 0
	for _, d := range degs {
		if d > max {
			max = d
		}
	}
	mean := float64(len(el)) / 100
	if float64(max) > 5*mean {
		t.Errorf("uniform graph too skewed: max %d mean %.1f", max, mean)
	}
}

func TestPreferentialAttachment(t *testing.T) {
	el := PreferentialAttachment(2000, 3, 5)
	if len(el) == 0 {
		t.Fatal("empty")
	}
	// Heavy tail: some vertex should have degree far above the mean.
	undirected := map[graph.VertexID]int{}
	for _, e := range el {
		undirected[e.Src]++
		undirected[e.Dst]++
	}
	max := 0
	for _, d := range undirected {
		if d > max {
			max = d
		}
	}
	mean := 2 * float64(len(el)) / float64(len(undirected))
	if float64(max) < 5*mean {
		t.Errorf("PA not heavy-tailed: max %d mean %.1f", max, mean)
	}
	if PreferentialAttachment(1, 3, 5) != nil {
		t.Error("degenerate n should be nil")
	}
}

func TestMeasureProfile(t *testing.T) {
	// Triangle has clustering 1.
	el := graph.EdgeList{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}}
	p := MeasureProfile(el)
	if p.Clustering != 1 {
		t.Errorf("triangle clustering = %v", p.Clustering)
	}
	if p.DegreeCounts[2] != 3 {
		t.Errorf("degree counts = %v", p.DegreeCounts)
	}
	// Path has clustering 0.
	path := graph.EdgeList{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}
	if MeasureProfile(path).Clustering != 0 {
		t.Error("path clustering should be 0")
	}
}

func TestBTERPreservesScale(t *testing.T) {
	base := PreferentialAttachment(500, 4, 9)
	p := MeasureProfile(base)
	small := BTER(p, 1, 11)
	big := BTER(p, 4, 11)
	if len(small) == 0 || len(big) == 0 {
		t.Fatal("BTER produced empty graphs")
	}
	ratio := float64(len(big)) / float64(len(small))
	if ratio < 2 || ratio > 8 {
		t.Errorf("x4 scale produced edge ratio %.2f", ratio)
	}
	nRatio := float64(big.NumVertices()) / float64(small.NumVertices())
	if nRatio < 3 || nRatio > 5 {
		t.Errorf("x4 scale produced vertex ratio %.2f", nRatio)
	}
}

func TestBTERPreservesClusteringRoughly(t *testing.T) {
	base := PreferentialAttachment(400, 5, 13)
	p := MeasureProfile(base)
	if p.Clustering <= 0 {
		t.Skip("base has no clustering to preserve")
	}
	scaled := BTER(p, 2, 17)
	got := estimateClustering(scaled)
	if got <= 0 {
		t.Errorf("scaled graph lost all clustering (base %.3f)", p.Clustering)
	}
}

func TestScaledFamily(t *testing.T) {
	base := Uniform(200, 800, 3)
	fam := ScaledFamily(base, []float64{1, 2, 4}, 7)
	if len(fam) != 3 {
		t.Fatalf("family size %d", len(fam))
	}
	if len(fam[2]) <= len(fam[0]) {
		t.Error("larger scale not larger")
	}
}

func TestSampleBatch(t *testing.T) {
	el := Uniform(100, 500, 2)
	del, ins, rem := SampleBatch(el, 50, 3)
	if len(del) != 50 || len(ins) != 50 {
		t.Fatalf("sample sizes %d/%d", len(del), len(ins))
	}
	if len(rem)+50 != len(el) {
		t.Fatalf("remaining %d + 50 != %d", len(rem), len(el))
	}
	for i := range del {
		if del[i].Action != graph.Delete || ins[i].Action != graph.Insert {
			t.Fatal("wrong actions")
		}
		if del[i].Src != ins[i].Src || del[i].Dst != ins[i].Dst {
			t.Fatal("delete/insert mismatch")
		}
	}
	// Oversized sample clamps.
	d2, _, r2 := SampleBatch(el[:10], 100, 1)
	if len(d2) != 10 || len(r2) != 0 {
		t.Error("oversample not clamped")
	}
}

func TestBatches(t *testing.T) {
	el := Uniform(50, 200, 4)
	bs := Batches(el, 7)
	total := 0
	for _, b := range bs {
		total += len(b)
	}
	if total != len(el) {
		t.Fatalf("batches cover %d/%d edges", total, len(el))
	}
	if Batches(el, 0) != nil {
		t.Error("count 0 should be nil")
	}
}

func TestStream(t *testing.T) {
	el := Uniform(20, 50, 5)
	n := 0
	err := Stream(el, func(c graph.Change) error {
		if c.Action != graph.Insert {
			t.Fatal("stream should insert")
		}
		n++
		return nil
	})
	if err != nil || n != len(el) {
		t.Fatalf("streamed %d, err %v", n, err)
	}
}

package graph

import (
	"bytes"
	"strings"
	"testing"
)

func sample() EdgeList {
	return EdgeList{{0, 1}, {1, 2}, {2, 0}, {3, 1}, {0, 1}}
}

func TestMaxVertexAndNumVertices(t *testing.T) {
	el := sample()
	if el.MaxVertex() != 3 {
		t.Errorf("MaxVertex = %d", el.MaxVertex())
	}
	if el.NumVertices() != 4 {
		t.Errorf("NumVertices = %d", el.NumVertices())
	}
	if (EdgeList{}).MaxVertex() != 0 {
		t.Error("empty MaxVertex != 0")
	}
}

func TestDedupe(t *testing.T) {
	el := sample().Dedupe()
	if len(el) != 4 {
		t.Fatalf("Dedupe len = %d, want 4", len(el))
	}
	for i := 1; i < len(el); i++ {
		if el[i] == el[i-1] {
			t.Fatal("duplicate survived")
		}
	}
	if len(EdgeList{}.Dedupe()) != 0 {
		t.Error("empty Dedupe broken")
	}
}

func TestSymmetrized(t *testing.T) {
	el := EdgeList{{0, 1}, {2, 2}}.Symmetrized()
	want := map[Edge]bool{{0, 1}: true, {1, 0}: true, {2, 2}: true}
	if len(el) != len(want) {
		t.Fatalf("Symmetrized = %v", el)
	}
	for _, e := range el {
		if !want[e] {
			t.Errorf("unexpected edge %v", e)
		}
	}
}

func TestChanges(t *testing.T) {
	b := EdgeList{{4, 5}}.Changes()
	if len(b) != 1 || b[0].Action != Insert || b[0].Src != 4 || b[0].Dst != 5 {
		t.Fatalf("Changes = %+v", b)
	}
}

func TestDegrees(t *testing.T) {
	deg := sample().Degrees()
	if deg[0] != 2 || deg[1] != 1 || deg[2] != 1 || deg[3] != 1 {
		t.Errorf("Degrees = %v", deg)
	}
	if (EdgeList{}).Degrees() != nil {
		t.Error("empty Degrees != nil")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	el := sample().Dedupe()
	var buf bytes.Buffer
	if _, err := el.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(el) {
		t.Fatalf("round trip %d edges, want %d", len(got), len(el))
	}
	for i := range el {
		if got[i] != el[i] {
			t.Fatalf("edge %d: %v != %v", i, got[i], el[i])
		}
	}
}

func TestReadEdgeListSkipsComments(t *testing.T) {
	in := "# header\n% mm comment\n\n1 2\n3 4\n"
	el, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(el) != 2 {
		t.Fatalf("parsed %d edges", len(el))
	}
}

func TestReadEdgeListRejectsGarbage(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("1 banana\n")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestBuildCSR(t *testing.T) {
	el := EdgeList{{0, 1}, {0, 2}, {1, 2}, {3, 0}}
	c := BuildCSR(el)
	if c.N != 4 || c.NumEdges() != 4 {
		t.Fatalf("N=%d edges=%d", c.N, c.NumEdges())
	}
	if got := c.Out(0); len(got) != 2 {
		t.Errorf("Out(0) = %v", got)
	}
	if c.OutDegree(0) != 2 || c.OutDegree(2) != 0 {
		t.Error("OutDegree wrong")
	}
	if got := c.In(2); len(got) != 2 {
		t.Errorf("In(2) = %v", got)
	}
	if got := c.In(0); len(got) != 1 || got[0] != 3 {
		t.Errorf("In(0) = %v", got)
	}
}

func TestBuildCSREmpty(t *testing.T) {
	c := BuildCSR(nil)
	if c.N != 0 || c.NumEdges() != 0 {
		t.Error("empty CSR wrong")
	}
}

// CSR must agree with a Store loaded with the same edges.
func TestCSRMatchesStore(t *testing.T) {
	el := EdgeList{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 3}}
	c := BuildCSR(el)
	s := NewStore()
	for _, e := range el {
		s.AddEdge(e.Src, e.Dst, Out)
		s.AddEdge(e.Src, e.Dst, In)
	}
	for v := VertexID(0); v < 4; v++ {
		if c.OutDegree(v) != s.OutDegree(v) {
			t.Errorf("v%d out-degree CSR %d != store %d", v, c.OutDegree(v), s.OutDegree(v))
		}
		if len(c.In(v)) != s.InDegree(v) {
			t.Errorf("v%d in-degree mismatch", v)
		}
	}
}

package graph

import (
	"testing"
	"testing/quick"
)

func TestEmptyStore(t *testing.T) {
	s := NewStore()
	if s.NumVertices() != 0 || s.NumEdgeCopies() != 0 || s.ActiveCount() != 0 {
		t.Fatal("fresh store not empty")
	}
	if s.HasVertex(1) {
		t.Error("HasVertex on empty store")
	}
	if s.AppendOut(1, nil) != nil || s.AppendIn(1, nil) != nil {
		t.Error("neighbors of absent vertex not nil")
	}
}

func TestAddEdgeBothDirections(t *testing.T) {
	s := NewStore()
	if !s.AddEdge(1, 2, Out) {
		t.Fatal("AddEdge Out returned false")
	}
	if !s.AddEdge(1, 2, In) {
		t.Fatal("AddEdge In returned false")
	}
	if s.NumOutEdges() != 1 || s.NumInEdges() != 1 {
		t.Fatalf("counts out=%d in=%d", s.NumOutEdges(), s.NumInEdges())
	}
	if got := s.AppendOut(1, nil); len(got) != 1 || got[0] != 2 {
		t.Errorf("AppendOut(1) = %v", got)
	}
	if got := s.AppendIn(2, nil); len(got) != 1 || got[0] != 1 {
		t.Errorf("AppendIn(2) = %v", got)
	}
	// Out copy lives under src; in copy under dst.
	if s.InDegree(1) != 0 || s.OutDegree(2) != 0 {
		t.Error("copies stored under wrong endpoint")
	}
}

func TestDuplicateEdgeIgnored(t *testing.T) {
	s := NewStore()
	s.AddEdge(1, 2, Out)
	if s.AddEdge(1, 2, Out) {
		t.Error("duplicate AddEdge returned true")
	}
	if s.NumOutEdges() != 1 {
		t.Errorf("NumOutEdges = %d", s.NumOutEdges())
	}
}

func TestRemoveEdge(t *testing.T) {
	s := NewStore()
	s.AddEdge(1, 2, Out)
	s.AddEdge(1, 3, Out)
	if !s.RemoveEdge(1, 2, Out) {
		t.Fatal("RemoveEdge returned false for present edge")
	}
	if s.RemoveEdge(1, 2, Out) {
		t.Error("RemoveEdge returned true for absent edge")
	}
	if s.RemoveEdge(9, 9, In) {
		t.Error("RemoveEdge on absent vertex returned true")
	}
	if got := s.AppendOut(1, nil); len(got) != 1 || got[0] != 3 {
		t.Errorf("AppendOut after remove = %v", got)
	}
}

func TestVertexDroppedWhenEmpty(t *testing.T) {
	s := NewStore()
	s.AddEdge(1, 2, Out)
	s.RemoveEdge(1, 2, Out)
	if s.HasVertex(1) {
		t.Error("vertex 1 survived with no copies")
	}
	if s.NumVertices() != 0 {
		t.Errorf("NumVertices = %d", s.NumVertices())
	}
}

func TestPinKeepsVertexAlive(t *testing.T) {
	s := NewStore()
	s.Pin(5)
	if !s.HasVertex(5) {
		t.Fatal("pinned vertex absent")
	}
	s.AddEdge(5, 6, Out)
	s.RemoveEdge(5, 6, Out)
	if !s.HasVertex(5) {
		t.Error("pinned vertex dropped after last edge removed")
	}
	s.Unpin(5)
	if s.HasVertex(5) {
		t.Error("vertex survived unpin with no edges")
	}
}

func TestApplyMarksActive(t *testing.T) {
	s := NewStore()
	if !s.Apply(Change{Action: Insert, Src: 1, Dst: 2}, Out) {
		t.Fatal("Apply insert failed")
	}
	if s.ActiveCount() != 1 {
		t.Fatalf("ActiveCount = %d", s.ActiveCount())
	}
	act := s.TakeActive()
	if len(act) != 1 || act[0] != 1 {
		t.Fatalf("TakeActive = %v (Out copy should activate the src)", act)
	}
	if s.ActiveCount() != 0 {
		t.Error("TakeActive did not clear")
	}
	s.Apply(Change{Action: Insert, Src: 3, Dst: 4}, In)
	act = s.TakeActive()
	if len(act) != 1 || act[0] != 4 {
		t.Fatalf("In copy should activate dst, got %v", act)
	}
	// No-op apply must not activate.
	s.Apply(Change{Action: Delete, Src: 8, Dst: 9}, Out)
	if s.ActiveCount() != 0 {
		t.Error("no-op change marked a vertex active")
	}
}

func TestActivateAllAndTakeSorted(t *testing.T) {
	s := NewStore()
	s.AddEdge(5, 1, Out)
	s.AddEdge(3, 1, Out)
	s.AddEdge(9, 1, Out)
	s.TakeActive() // drop insert activations
	s.ActivateAll()
	act := s.TakeActive()
	if len(act) != 3 { // stored vertices are the sources 3, 5, 9
		t.Fatalf("TakeActive len = %d, want 3", len(act))
	}
	for i := 1; i < len(act); i++ {
		if act[i-1] >= act[i] {
			t.Fatal("TakeActive not sorted")
		}
	}
}

func TestClearActive(t *testing.T) {
	s := NewStore()
	s.MarkActive(7)
	s.ClearActive(7)
	if s.ActiveCount() != 0 {
		t.Error("ClearActive failed")
	}
}

func TestCopiesEnumeratesEverything(t *testing.T) {
	s := NewStore()
	s.AddEdge(1, 2, Out)
	s.AddEdge(3, 2, In)
	s.AddEdge(2, 4, Out)
	got := map[EdgeCopy]bool{}
	s.Copies(func(c EdgeCopy) bool {
		got[c] = true
		return true
	})
	want := []EdgeCopy{{1, 2, Out}, {3, 2, In}, {2, 4, Out}}
	if len(got) != len(want) {
		t.Fatalf("Copies found %d, want %d", len(got), len(want))
	}
	for _, c := range want {
		if !got[c] {
			t.Errorf("missing copy %+v", c)
		}
	}
	// Early termination.
	n := 0
	s.Copies(func(EdgeCopy) bool { n++; return false })
	if n != 1 {
		t.Errorf("early-stop visited %d copies", n)
	}
}

func TestVertexListSorted(t *testing.T) {
	s := NewStore()
	for _, v := range []VertexID{9, 2, 5} {
		s.AddEdge(v, 100, Out)
	}
	vl := s.VertexList()
	if len(vl) != 3 { // 9,2,5; dst 100 is not stored under an Out copy
		t.Fatalf("VertexList = %v", vl)
	}
	for i := 1; i < len(vl); i++ {
		if vl[i-1] >= vl[i] {
			t.Fatal("VertexList not sorted")
		}
	}
}

func TestVerticesEarlyStop(t *testing.T) {
	s := NewStore()
	s.AddEdge(1, 2, Out)
	s.AddEdge(3, 4, Out)
	n := 0
	s.Vertices(func(VertexID) bool { n++; return false })
	if n != 1 {
		t.Errorf("Vertices early stop visited %d", n)
	}
}

// Property: after an arbitrary interleaving of inserts and deletes of a
// small edge universe, counts equal the reference set sizes.
func TestStoreMatchesReferenceProperty(t *testing.T) {
	type op struct {
		U, V uint8
		Del  bool
		In   bool
	}
	f := func(ops []op) bool {
		s := NewStore()
		refOut := map[[2]VertexID]bool{}
		refIn := map[[2]VertexID]bool{}
		for _, o := range ops {
			u, v := VertexID(o.U%8), VertexID(o.V%8)
			key := [2]VertexID{u, v}
			dir := Out
			ref := refOut
			if o.In {
				dir = In
				ref = refIn
			}
			if o.Del {
				s.RemoveEdge(u, v, dir)
				delete(ref, key)
			} else {
				s.AddEdge(u, v, dir)
				ref[key] = true
			}
		}
		return s.NumOutEdges() == len(refOut) && s.NumInEdges() == len(refIn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStringNonEmpty(t *testing.T) {
	if NewStore().String() == "" {
		t.Error("String empty")
	}
}

func BenchmarkAddEdge(b *testing.B) {
	s := NewStore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddEdge(VertexID(i%100000), VertexID(i), Out)
	}
}

func BenchmarkApplyInsertDeleteCycle(b *testing.B) {
	s := NewStore()
	for i := 0; i < b.N; i++ {
		c := Change{Action: Insert, Src: VertexID(i % 1024), Dst: VertexID(i % 4096)}
		s.Apply(c, Out)
		c.Action = Delete
		s.Apply(c, Out)
	}
}

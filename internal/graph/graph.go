// Package graph provides the per-agent dynamic graph store.
//
// The paper (§4) stores the dynamic graph "as a flat hash map with
// vectors". This package kept that literal shape through PR 5 (see
// MapStore, retained as the reference implementation); the production
// Store is now a hybrid CSR-plus-delta-log structure: sealed immutable
// CSR runs (sorted, compact, offset-indexed into two store-wide arrays)
// plus a small mutable tail of recent inserts and deletes, folded into a
// fresh sealed generation when the tail crosses a size threshold. Callers
// never see the representation: neighbour access goes through the cursor
// / ForEach iteration interface, which yields a canonical ascending order
// regardless of compaction timing.
//
// A Store holds only the slice of the graph owned by one agent. Each edge
// copy is tagged with the direction it represents locally, because in
// ElGA's partition the out-copy of (u,v) and the in-copy can live on
// different agents.
package graph

// VertexID is a 64-bit vertex identifier, matching the paper's
// configuration of all systems with 64-bit IDs.
type VertexID uint64

// Action is the d component of a change (d,u,v): insert or delete.
type Action uint8

const (
	// Insert adds the edge if absent.
	Insert Action = iota
	// Delete removes the edge if present.
	Delete
)

// String returns "+" for Insert and "-" for Delete.
func (a Action) String() string {
	if a == Delete {
		return "-"
	}
	return "+"
}

// Change is one element of the turnstile stream D = (c1, c2, ...).
type Change struct {
	Action Action
	Src    VertexID
	Dst    VertexID
}

// Batch is a contiguous segment of the change stream (Definition 2.4).
type Batch []Change

// Dir tags which direction an edge copy represents on this agent.
type Dir uint8

const (
	// Out marks the copy stored under the edge's source.
	Out Dir = iota
	// In marks the copy stored under the edge's destination.
	In
)

// EdgeCopy describes one stored copy for migration enumeration.
type EdgeCopy struct {
	Src VertexID
	Dst VertexID
	Dir Dir
}

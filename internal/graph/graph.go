// Package graph provides the per-agent dynamic graph store.
//
// The paper (§4) stores the dynamic graph "as a flat hash map with
// vectors", keeping both in- and out-edges. This package mirrors that: a
// map from vertex ID to an adjacency record holding out- and in-neighbour
// vectors. Edges insert in O(1) amortized and delete in O(deg) by
// swap-remove, so there are no tombstones and memory stays proportional to
// the live graph (Goal 2).
//
// A Store holds only the slice of the graph owned by one agent. Each edge
// copy is tagged with the direction it represents locally, because in
// ElGA's partition the out-copy of (u,v) and the in-copy can live on
// different agents.
package graph

import (
	"fmt"
	"sort"
)

// VertexID is a 64-bit vertex identifier, matching the paper's
// configuration of all systems with 64-bit IDs.
type VertexID uint64

// Action is the d component of a change (d,u,v): insert or delete.
type Action uint8

const (
	// Insert adds the edge if absent.
	Insert Action = iota
	// Delete removes the edge if present.
	Delete
)

// String returns "+" for Insert and "-" for Delete.
func (a Action) String() string {
	if a == Delete {
		return "-"
	}
	return "+"
}

// Change is one element of the turnstile stream D = (c1, c2, ...).
type Change struct {
	Action Action
	Src    VertexID
	Dst    VertexID
}

// Batch is a contiguous segment of the change stream (Definition 2.4).
type Batch []Change

// Dir tags which direction an edge copy represents on this agent.
type Dir uint8

const (
	// Out marks the copy stored under the edge's source.
	Out Dir = iota
	// In marks the copy stored under the edge's destination.
	In
)

type adjacency struct {
	out []VertexID
	in  []VertexID
}

// Store is a single agent's dynamic graph slice. It is not safe for
// concurrent use: agents are single-threaded event loops.
type Store struct {
	adj      map[VertexID]*adjacency
	numOut   int
	numIn    int
	active   map[VertexID]struct{}
	pinEmpty map[VertexID]struct{} // vertices kept alive despite zero local edges
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		adj:      make(map[VertexID]*adjacency),
		active:   make(map[VertexID]struct{}),
		pinEmpty: make(map[VertexID]struct{}),
	}
}

// NumVertices returns the count of vertices with at least one local edge
// copy (or a pin).
func (s *Store) NumVertices() int { return len(s.adj) }

// NumOutEdges returns the number of locally stored out-copies.
func (s *Store) NumOutEdges() int { return s.numOut }

// NumInEdges returns the number of locally stored in-copies.
func (s *Store) NumInEdges() int { return s.numIn }

// NumEdgeCopies returns out+in copies, the agent's memory-relevant load.
func (s *Store) NumEdgeCopies() int { return s.numOut + s.numIn }

func (s *Store) record(v VertexID) *adjacency {
	a := s.adj[v]
	if a == nil {
		a = &adjacency{}
		s.adj[v] = a
	}
	return a
}

// Pin keeps vertex v in the store even with zero local edges, used for
// replica bookkeeping of split vertices that currently hold no edge copy.
func (s *Store) Pin(v VertexID) {
	s.record(v)
	s.pinEmpty[v] = struct{}{}
}

// Unpin removes the pin; the vertex is dropped if it has no edges left.
func (s *Store) Unpin(v VertexID) {
	delete(s.pinEmpty, v)
	s.maybeDrop(v)
}

func (s *Store) maybeDrop(v VertexID) {
	if a, ok := s.adj[v]; ok && len(a.out) == 0 && len(a.in) == 0 {
		if _, pinned := s.pinEmpty[v]; !pinned {
			delete(s.adj, v)
			delete(s.active, v)
		}
	}
}

func contains(list []VertexID, v VertexID) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

func remove(list []VertexID, v VertexID) ([]VertexID, bool) {
	for i, x := range list {
		if x == v {
			list[i] = list[len(list)-1]
			return list[:len(list)-1], true
		}
	}
	return list, false
}

// AddEdge stores a copy of edge (u,v) in direction dir. For dir==Out the
// copy lives under u (v appended to u's out-list); for dir==In it lives
// under v (u appended to v's in-list). Duplicate copies are ignored; the
// return reports whether the store changed.
func (s *Store) AddEdge(u, v VertexID, dir Dir) bool {
	switch dir {
	case Out:
		a := s.record(u)
		if contains(a.out, v) {
			return false
		}
		a.out = append(a.out, v)
		s.numOut++
	case In:
		a := s.record(v)
		if contains(a.in, u) {
			return false
		}
		a.in = append(a.in, u)
		s.numIn++
	}
	return true
}

// RemoveEdge deletes the stored copy of (u,v) in direction dir, reporting
// whether it existed. Vertices left with no copies (and no pin) are
// dropped so memory tracks the live graph.
func (s *Store) RemoveEdge(u, v VertexID, dir Dir) bool {
	switch dir {
	case Out:
		a, ok := s.adj[u]
		if !ok {
			return false
		}
		var removed bool
		a.out, removed = remove(a.out, v)
		if removed {
			s.numOut--
			s.maybeDrop(u)
		}
		return removed
	case In:
		a, ok := s.adj[v]
		if !ok {
			return false
		}
		var removed bool
		a.in, removed = remove(a.in, u)
		if removed {
			s.numIn--
			s.maybeDrop(v)
		}
		return removed
	}
	return false
}

// Apply applies one change in direction dir, marking the locally stored
// endpoint active if the topology changed.
func (s *Store) Apply(c Change, dir Dir) bool {
	var changed bool
	if c.Action == Insert {
		changed = s.AddEdge(c.Src, c.Dst, dir)
	} else {
		changed = s.RemoveEdge(c.Src, c.Dst, dir)
	}
	if changed {
		if dir == Out {
			s.MarkActive(c.Src)
		} else {
			s.MarkActive(c.Dst)
		}
	}
	return changed
}

// HasVertex reports whether v has any local presence.
func (s *Store) HasVertex(v VertexID) bool {
	_, ok := s.adj[v]
	return ok
}

// OutNeighbors returns v's locally stored out-neighbours. The slice is
// owned by the store; callers must not mutate or retain it across changes.
func (s *Store) OutNeighbors(v VertexID) []VertexID {
	if a, ok := s.adj[v]; ok {
		return a.out
	}
	return nil
}

// InNeighbors returns v's locally stored in-neighbours, with the same
// aliasing caveat as OutNeighbors.
func (s *Store) InNeighbors(v VertexID) []VertexID {
	if a, ok := s.adj[v]; ok {
		return a.in
	}
	return nil
}

// OutDegree returns the local out-degree of v.
func (s *Store) OutDegree(v VertexID) int { return len(s.OutNeighbors(v)) }

// InDegree returns the local in-degree of v.
func (s *Store) InDegree(v VertexID) int { return len(s.InNeighbors(v)) }

// Vertices calls fn for every locally present vertex until fn returns
// false. Iteration order is unspecified.
func (s *Store) Vertices(fn func(VertexID) bool) {
	for v := range s.adj {
		if !fn(v) {
			return
		}
	}
}

// VertexList returns all locally present vertices, sorted (deterministic
// iteration for tests and checkpoints).
func (s *Store) VertexList() []VertexID {
	out := make([]VertexID, 0, len(s.adj))
	for v := range s.adj {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MarkActive adds v to the active set consumed by the next superstep.
func (s *Store) MarkActive(v VertexID) { s.active[v] = struct{}{} }

// IsActive reports whether v is in the active set.
func (s *Store) IsActive(v VertexID) bool {
	_, ok := s.active[v]
	return ok
}

// ClearActive removes v from the active set.
func (s *Store) ClearActive(v VertexID) { delete(s.active, v) }

// ActiveCount returns the size of the active set.
func (s *Store) ActiveCount() int { return len(s.active) }

// TakeActive returns the current active set sorted and resets it. Dynamic
// algorithms seed each batch's first superstep from this set (§4.3: "only
// vertices directly modified in the batch are activated").
func (s *Store) TakeActive() []VertexID {
	if len(s.active) == 0 {
		return nil
	}
	out := make([]VertexID, 0, len(s.active))
	for v := range s.active {
		out = append(out, v)
	}
	s.active = make(map[VertexID]struct{})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ActivateAll marks every local vertex active (static from-scratch runs).
func (s *Store) ActivateAll() {
	for v := range s.adj {
		s.active[v] = struct{}{}
	}
}

// EdgeCopy describes one stored copy for migration enumeration.
type EdgeCopy struct {
	Src VertexID
	Dst VertexID
	Dir Dir
}

// Copies calls fn for every stored edge copy until fn returns false.
// Agents use it to re-evaluate ownership after a directory change.
func (s *Store) Copies(fn func(EdgeCopy) bool) {
	for v, a := range s.adj {
		for _, w := range a.out {
			if !fn(EdgeCopy{Src: v, Dst: w, Dir: Out}) {
				return
			}
		}
		for _, u := range a.in {
			if !fn(EdgeCopy{Src: u, Dst: v, Dir: In}) {
				return
			}
		}
	}
}

// String summarizes the store for logs.
func (s *Store) String() string {
	return fmt.Sprintf("store{v=%d out=%d in=%d active=%d}",
		len(s.adj), s.numOut, s.numIn, len(s.active))
}

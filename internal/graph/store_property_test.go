package graph

import (
	"math/rand"
	"testing"
)

// fullCompare asserts the CSR+delta store and the reference map store are
// observationally identical through the EdgeStore interface.
func fullCompare(t *testing.T, cs *Store, ms *MapStore) {
	t.Helper()
	if cs.NumVertices() != ms.NumVertices() {
		t.Fatalf("NumVertices: csr=%d map=%d", cs.NumVertices(), ms.NumVertices())
	}
	if cs.NumOutEdges() != ms.NumOutEdges() || cs.NumInEdges() != ms.NumInEdges() {
		t.Fatalf("edge counts: csr=(%d,%d) map=(%d,%d)",
			cs.NumOutEdges(), cs.NumInEdges(), ms.NumOutEdges(), ms.NumInEdges())
	}
	cvl, mvl := cs.VertexList(), ms.VertexList()
	if len(cvl) != len(mvl) {
		t.Fatalf("VertexList length: csr=%v map=%v", cvl, mvl)
	}
	for i := range cvl {
		if cvl[i] != mvl[i] {
			t.Fatalf("VertexList[%d]: csr=%d map=%d", i, cvl[i], mvl[i])
		}
	}
	for _, v := range cvl {
		co, ci := cs.Degree(v)
		mo, mi := ms.Degree(v)
		if co != mo || ci != mi {
			t.Fatalf("Degree(%d): csr=(%d,%d) map=(%d,%d)", v, co, ci, mo, mi)
		}
		cOut, mOut := cs.AppendOut(v, nil), ms.AppendOut(v, nil)
		cIn, mIn := cs.AppendIn(v, nil), ms.AppendIn(v, nil)
		if len(cOut) != len(mOut) || len(cIn) != len(mIn) {
			t.Fatalf("neighbour lengths for %d differ", v)
		}
		for i := range cOut {
			if cOut[i] != mOut[i] {
				t.Fatalf("out[%d] of %d: csr=%d map=%d (order must be canonical ascending)",
					i, v, cOut[i], mOut[i])
			}
		}
		for i := range cIn {
			if cIn[i] != mIn[i] {
				t.Fatalf("in[%d] of %d: csr=%d map=%d", i, v, cIn[i], mIn[i])
			}
		}
	}
	cCopies := map[EdgeCopy]bool{}
	cs.Copies(func(c EdgeCopy) bool { cCopies[c] = true; return true })
	n := 0
	ms.Copies(func(c EdgeCopy) bool {
		n++
		if !cCopies[c] {
			t.Fatalf("map store copy %+v missing from csr store", c)
		}
		return true
	})
	if n != len(cCopies) {
		t.Fatalf("copy counts: csr=%d map=%d", len(cCopies), n)
	}
}

// TestStoreEquivalenceProperty drives the CSR+delta store and the map
// reference through randomized insert/delete/batch/pin/compact/migrate
// sequences and asserts observational equivalence throughout. Vertex and
// neighbour IDs draw from a small universe so deletes hit the swap-remove
// path (map store) and the sealed delete-log path (CSR store) constantly.
func TestStoreEquivalenceProperty(t *testing.T) {
	const (
		seeds    = 20
		opsPer   = 600
		universe = 24
	)
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cs := NewStore()
		// Tiny compaction threshold: sealed generations turn over every
		// few operations, so sequences cross sealed/tail boundaries.
		cs.SetCompactMin(1 + rng.Intn(16))
		ms := NewMapStore()

		randDir := func() Dir {
			if rng.Intn(2) == 0 {
				return Out
			}
			return In
		}
		for op := 0; op < opsPer; op++ {
			u := VertexID(rng.Intn(universe))
			v := VertexID(rng.Intn(universe))
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // insert
				dir := randDir()
				if cs.AddEdge(u, v, dir) != ms.AddEdge(u, v, dir) {
					t.Fatalf("seed %d op %d: AddEdge(%d,%d,%d) disagreed", seed, op, u, v, dir)
				}
			case 4, 5, 6: // delete
				dir := randDir()
				if cs.RemoveEdge(u, v, dir) != ms.RemoveEdge(u, v, dir) {
					t.Fatalf("seed %d op %d: RemoveEdge(%d,%d,%d) disagreed", seed, op, u, v, dir)
				}
			case 7: // batch apply; frontiers must match exactly
				b := make(Batch, rng.Intn(8))
				for i := range b {
					b[i] = Change{
						Action: Action(rng.Intn(2)),
						Src:    VertexID(rng.Intn(universe)),
						Dst:    VertexID(rng.Intn(universe)),
					}
				}
				dir := randDir()
				cf, mf := cs.ApplyBatch(b, dir), ms.ApplyBatch(b, dir)
				if len(cf) != len(mf) {
					t.Fatalf("seed %d op %d: frontiers csr=%v map=%v", seed, op, cf, mf)
				}
				for i := range cf {
					if cf[i] != mf[i] {
						t.Fatalf("seed %d op %d: frontier[%d] csr=%d map=%d", seed, op, i, cf[i], mf[i])
					}
				}
			case 8: // pin / unpin
				if rng.Intn(2) == 0 {
					cs.Pin(u)
					ms.Pin(u)
				} else {
					cs.Unpin(u)
					ms.Unpin(u)
				}
			case 9: // migrate-style churn: enumerate, ship away, re-own some
				var copies []EdgeCopy
				cs.Copies(func(c EdgeCopy) bool {
					copies = append(copies, c)
					return true
				})
				if len(copies) == 0 {
					continue
				}
				k := 1 + rng.Intn(len(copies))
				for _, c := range copies[:k] {
					cs.RemoveEdge(c.Src, c.Dst, c.Dir)
					ms.RemoveEdge(c.Src, c.Dst, c.Dir)
				}
				for _, c := range copies[:k/2] { // half migrate back
					cs.AddEdge(c.Src, c.Dst, c.Dir)
					ms.AddEdge(c.Src, c.Dst, c.Dir)
				}
			}
			if rng.Intn(13) == 0 {
				cs.Compact() // forced generation turnover mid-sequence
			}
			if op%97 == 0 {
				fullCompare(t, cs, ms)
			}
		}
		// Drain activations identically, then final deep compare.
		ca, ma := cs.TakeActive(), ms.TakeActive()
		if len(ca) != len(ma) {
			t.Fatalf("seed %d: TakeActive csr=%v map=%v", seed, ca, ma)
		}
		for i := range ca {
			if ca[i] != ma[i] {
				t.Fatalf("seed %d: TakeActive[%d] csr=%d map=%d", seed, i, ca[i], ma[i])
			}
		}
		fullCompare(t, cs, ms)
	}
}

// TestPinnedVertexSurvivesCompaction pins an isolated vertex, forces a
// compaction, and asserts it still exists with an empty (but valid) run.
func TestPinnedVertexSurvivesCompaction(t *testing.T) {
	s := NewStore()
	s.Pin(42)
	s.AddEdge(1, 2, Out)
	s.AddEdge(42, 7, Out)
	s.RemoveEdge(42, 7, Out)
	s.Compact()
	if !s.HasVertex(42) {
		t.Fatal("pinned vertex dropped by compaction")
	}
	if out, in := s.Degree(42); out != 0 || in != 0 {
		t.Fatalf("pinned vertex degree (%d,%d), want (0,0)", out, in)
	}
	s.Unpin(42)
	if s.HasVertex(42) {
		t.Fatal("unpinned empty vertex survived")
	}
	if !s.HasVertex(1) {
		t.Fatal("compaction lost an unrelated vertex")
	}
}

// TestIterationOrderDeterministic builds the same logical graph under
// three compaction regimes — never, constantly, and at random points —
// and asserts neighbour iteration yields the identical ascending sequence
// from each, regardless of how edges are split between sealed runs and
// the tail.
func TestIterationOrderDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	type edit struct {
		c   Change
		dir Dir
	}
	var script []edit
	for i := 0; i < 800; i++ {
		script = append(script, edit{
			c: Change{
				Action: Action(rng.Intn(2)),
				Src:    VertexID(rng.Intn(32)),
				Dst:    VertexID(rng.Intn(32)),
			},
			dir: Dir(rng.Intn(2)),
		})
	}
	never := NewStore()
	never.SetCompactMin(1 << 30)
	always := NewStore()
	always.SetCompactMin(1)
	random := NewStore()
	random.SetCompactMin(1 << 30)
	for _, e := range script {
		never.Apply(e.c, e.dir)
		always.Apply(e.c, e.dir)
		random.Apply(e.c, e.dir)
		if rng.Intn(50) == 0 {
			random.Compact()
		}
	}
	if always.Compactions() == 0 {
		t.Fatal("test misconfigured: 'always' store never compacted")
	}
	vl := never.VertexList()
	for _, v := range vl {
		a, b, c := never.AppendOut(v, nil), always.AppendOut(v, nil), random.AppendOut(v, nil)
		if len(a) != len(b) || len(a) != len(c) {
			t.Fatalf("out-degree of %d differs across compaction regimes", v)
		}
		for i := range a {
			if a[i] != b[i] || a[i] != c[i] {
				t.Fatalf("out[%d] of %d: never=%d always=%d random=%d", i, v, a[i], b[i], c[i])
			}
			if i > 0 && a[i-1] >= a[i] {
				t.Fatalf("out neighbours of %d not strictly ascending: %v", v, a)
			}
		}
		ai, bi, ci := never.AppendIn(v, nil), always.AppendIn(v, nil), random.AppendIn(v, nil)
		for i := range ai {
			if ai[i] != bi[i] || ai[i] != ci[i] {
				t.Fatalf("in[%d] of %d differs across regimes", i, v)
			}
		}
	}
}

// TestCursorZeroAlloc asserts neighbour iteration over mixed sealed+tail
// state performs no heap allocation — the property the superstep hot path
// ceiling depends on.
func TestCursorZeroAlloc(t *testing.T) {
	s := NewStore()
	s.SetCompactMin(1 << 30)
	for i := 0; i < 64; i++ {
		s.AddEdge(1, VertexID(10+i*2), Out)
	}
	s.Compact() // seal the even neighbours
	for i := 0; i < 32; i++ {
		s.AddEdge(1, VertexID(11+i*4), Out) // odd adds land in the tail
		s.RemoveEdge(1, VertexID(10+i*8), Out)
	}
	var sink VertexID
	allocs := testing.AllocsPerRun(100, func() {
		for it := s.OutCursor(1); ; {
			w, ok := it.Next()
			if !ok {
				break
			}
			sink = w
		}
		s.ForEachOut(1, func(w VertexID) bool {
			sink = w
			return true
		})
	})
	if allocs != 0 {
		t.Fatalf("cursor iteration allocates %v per run, want 0", allocs)
	}
	_ = sink
}

// TestMemoryBytesTracksGrowth sanity-checks the O(1) footprint estimate:
// it must be positive, grow with edges, and shrink after deleting and
// compacting most of the graph.
func TestMemoryBytesTracksGrowth(t *testing.T) {
	s := NewStore()
	if s.MemoryBytes() != 0 {
		t.Fatalf("empty store reports %d bytes", s.MemoryBytes())
	}
	for i := 0; i < 1000; i++ {
		s.AddEdge(VertexID(i%50), VertexID(i), Out)
	}
	grown := s.MemoryBytes()
	if grown == 0 {
		t.Fatal("populated store reports 0 bytes")
	}
	if s.BytesPerEdge() <= 0 {
		t.Fatal("BytesPerEdge not positive")
	}
	for i := 0; i < 1000; i++ {
		s.RemoveEdge(VertexID(i%50), VertexID(i), Out)
	}
	s.Compact()
	if shrunk := s.MemoryBytes(); shrunk >= grown {
		t.Fatalf("footprint did not shrink after delete+compact: %d -> %d", grown, shrunk)
	}
}

package graph

import (
	"fmt"
	"sort"
)

// EdgeStore is the representation-neutral interface both stores satisfy.
// Property tests drive a CSR+delta Store and a MapStore through it and
// assert observational equivalence; production code uses *Store directly.
type EdgeStore interface {
	AddEdge(u, v VertexID, dir Dir) bool
	RemoveEdge(u, v VertexID, dir Dir) bool
	Apply(c Change, dir Dir) bool
	ApplyBatch(b Batch, dir Dir) []VertexID
	HasVertex(v VertexID) bool
	Degree(v VertexID) (out, in int)
	OutDegree(v VertexID) int
	InDegree(v VertexID) int
	ForEachOut(v VertexID, fn func(VertexID) bool)
	ForEachIn(v VertexID, fn func(VertexID) bool)
	AppendOut(v VertexID, buf []VertexID) []VertexID
	AppendIn(v VertexID, buf []VertexID) []VertexID
	Pin(v VertexID)
	Unpin(v VertexID)
	NumVertices() int
	NumOutEdges() int
	NumInEdges() int
	NumEdgeCopies() int
	VertexList() []VertexID
	Copies(fn func(EdgeCopy) bool)
	TakeActive() []VertexID
	MemoryBytes() uint64
}

var (
	_ EdgeStore = (*Store)(nil)
	_ EdgeStore = (*MapStore)(nil)
)

type adjacency struct {
	out []VertexID
	in  []VertexID
}

// MapStore is the paper's §4 "flat hash map with vectors" taken literally:
// a map from vertex ID to out/in neighbour vectors, O(1) amortized insert,
// O(deg) swap-remove delete. It was the production store through PR 5 and
// is retained as the reference implementation the CSR+delta Store is
// property-tested against, and as the memory baseline for the bytes/edge
// comparison in elga-bench.
type MapStore struct {
	adj      map[VertexID]*adjacency
	numOut   int
	numIn    int
	active   map[VertexID]struct{}
	pinEmpty map[VertexID]struct{} // vertices kept alive despite zero local edges
}

// NewMapStore returns an empty map-of-slices store.
func NewMapStore() *MapStore {
	return &MapStore{
		adj:      make(map[VertexID]*adjacency),
		active:   make(map[VertexID]struct{}),
		pinEmpty: make(map[VertexID]struct{}),
	}
}

// NumVertices returns the count of vertices with at least one local edge
// copy (or a pin).
func (s *MapStore) NumVertices() int { return len(s.adj) }

// NumOutEdges returns the number of locally stored out-copies.
func (s *MapStore) NumOutEdges() int { return s.numOut }

// NumInEdges returns the number of locally stored in-copies.
func (s *MapStore) NumInEdges() int { return s.numIn }

// NumEdgeCopies returns out+in copies.
func (s *MapStore) NumEdgeCopies() int { return s.numOut + s.numIn }

func (s *MapStore) record(v VertexID) *adjacency {
	a := s.adj[v]
	if a == nil {
		a = &adjacency{}
		s.adj[v] = a
	}
	return a
}

// Pin keeps vertex v in the store even with zero local edges.
func (s *MapStore) Pin(v VertexID) {
	s.record(v)
	s.pinEmpty[v] = struct{}{}
}

// Unpin removes the pin; the vertex is dropped if it has no edges left.
func (s *MapStore) Unpin(v VertexID) {
	delete(s.pinEmpty, v)
	s.maybeDrop(v)
}

func (s *MapStore) maybeDrop(v VertexID) {
	if a, ok := s.adj[v]; ok && len(a.out) == 0 && len(a.in) == 0 {
		if _, pinned := s.pinEmpty[v]; !pinned {
			delete(s.adj, v)
			delete(s.active, v)
		}
	}
}

func contains(list []VertexID, v VertexID) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

// remove swap-removes v: order is NOT preserved, which is exactly why the
// iteration interface re-sorts — see ForEachOut.
func remove(list []VertexID, v VertexID) ([]VertexID, bool) {
	for i, x := range list {
		if x == v {
			list[i] = list[len(list)-1]
			return list[:len(list)-1], true
		}
	}
	return list, false
}

// AddEdge stores a copy of edge (u,v) in direction dir.
func (s *MapStore) AddEdge(u, v VertexID, dir Dir) bool {
	switch dir {
	case Out:
		a := s.record(u)
		if contains(a.out, v) {
			return false
		}
		a.out = append(a.out, v)
		s.numOut++
	case In:
		a := s.record(v)
		if contains(a.in, u) {
			return false
		}
		a.in = append(a.in, u)
		s.numIn++
	}
	return true
}

// RemoveEdge deletes the stored copy of (u,v) in direction dir.
func (s *MapStore) RemoveEdge(u, v VertexID, dir Dir) bool {
	switch dir {
	case Out:
		a, ok := s.adj[u]
		if !ok {
			return false
		}
		var removed bool
		a.out, removed = remove(a.out, v)
		if removed {
			s.numOut--
			s.maybeDrop(u)
		}
		return removed
	case In:
		a, ok := s.adj[v]
		if !ok {
			return false
		}
		var removed bool
		a.in, removed = remove(a.in, u)
		if removed {
			s.numIn--
			s.maybeDrop(v)
		}
		return removed
	}
	return false
}

// Apply applies one change in direction dir, marking the locally stored
// endpoint active if the topology changed.
func (s *MapStore) Apply(c Change, dir Dir) bool {
	var changed bool
	if c.Action == Insert {
		changed = s.AddEdge(c.Src, c.Dst, dir)
	} else {
		changed = s.RemoveEdge(c.Src, c.Dst, dir)
	}
	if changed {
		if dir == Out {
			s.MarkActive(c.Src)
		} else {
			s.MarkActive(c.Dst)
		}
	}
	return changed
}

// ApplyBatch applies a change batch and returns the sorted frontier of
// locally stored endpoints whose topology actually changed.
func (s *MapStore) ApplyBatch(b Batch, dir Dir) []VertexID {
	if len(b) == 0 {
		return nil
	}
	touched := make(map[VertexID]struct{}, len(b))
	for _, c := range b {
		if s.Apply(c, dir) {
			if dir == Out {
				touched[c.Src] = struct{}{}
			} else {
				touched[c.Dst] = struct{}{}
			}
		}
	}
	if len(touched) == 0 {
		return nil
	}
	frontier := make([]VertexID, 0, len(touched))
	for v := range touched {
		frontier = append(frontier, v)
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
	return frontier
}

// HasVertex reports whether v has any local presence.
func (s *MapStore) HasVertex(v VertexID) bool {
	_, ok := s.adj[v]
	return ok
}

// Degree returns v's local out- and in-degrees.
func (s *MapStore) Degree(v VertexID) (out, in int) {
	if a, ok := s.adj[v]; ok {
		return len(a.out), len(a.in)
	}
	return 0, 0
}

// OutDegree returns the local out-degree of v.
func (s *MapStore) OutDegree(v VertexID) int {
	out, _ := s.Degree(v)
	return out
}

// InDegree returns the local in-degree of v.
func (s *MapStore) InDegree(v VertexID) int {
	_, in := s.Degree(v)
	return in
}

// sortedCopy returns an ascending copy of list. MapStore's swap-remove
// scrambles vector order, so the canonical ascending iteration order the
// EdgeStore interface promises is recovered by sorting on read — fine for
// a reference implementation, which is not on any hot path.
func sortedCopy(list []VertexID) []VertexID {
	if len(list) == 0 {
		return nil
	}
	out := make([]VertexID, len(list))
	copy(out, list)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ForEachOut calls fn for every locally stored out-neighbour of v in
// ascending ID order until fn returns false.
func (s *MapStore) ForEachOut(v VertexID, fn func(VertexID) bool) {
	a, ok := s.adj[v]
	if !ok {
		return
	}
	for _, w := range sortedCopy(a.out) {
		if !fn(w) {
			return
		}
	}
}

// ForEachIn calls fn for every locally stored in-neighbour of v in
// ascending ID order until fn returns false.
func (s *MapStore) ForEachIn(v VertexID, fn func(VertexID) bool) {
	a, ok := s.adj[v]
	if !ok {
		return
	}
	for _, u := range sortedCopy(a.in) {
		if !fn(u) {
			return
		}
	}
}

// AppendOut appends v's out-neighbours (ascending) onto buf.
func (s *MapStore) AppendOut(v VertexID, buf []VertexID) []VertexID {
	s.ForEachOut(v, func(w VertexID) bool {
		buf = append(buf, w)
		return true
	})
	return buf
}

// AppendIn appends v's in-neighbours (ascending) onto buf.
func (s *MapStore) AppendIn(v VertexID, buf []VertexID) []VertexID {
	s.ForEachIn(v, func(u VertexID) bool {
		buf = append(buf, u)
		return true
	})
	return buf
}

// Vertices calls fn for every locally present vertex until fn returns
// false. Iteration order is unspecified.
func (s *MapStore) Vertices(fn func(VertexID) bool) {
	for v := range s.adj {
		if !fn(v) {
			return
		}
	}
}

// VertexList returns all locally present vertices, sorted.
func (s *MapStore) VertexList() []VertexID {
	out := make([]VertexID, 0, len(s.adj))
	for v := range s.adj {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MarkActive adds v to the active set consumed by the next superstep.
func (s *MapStore) MarkActive(v VertexID) { s.active[v] = struct{}{} }

// IsActive reports whether v is in the active set.
func (s *MapStore) IsActive(v VertexID) bool {
	_, ok := s.active[v]
	return ok
}

// ClearActive removes v from the active set.
func (s *MapStore) ClearActive(v VertexID) { delete(s.active, v) }

// ActiveCount returns the size of the active set.
func (s *MapStore) ActiveCount() int { return len(s.active) }

// TakeActive returns the current active set sorted and resets it.
func (s *MapStore) TakeActive() []VertexID {
	if len(s.active) == 0 {
		return nil
	}
	out := make([]VertexID, 0, len(s.active))
	for v := range s.active {
		out = append(out, v)
	}
	s.active = make(map[VertexID]struct{})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ActivateAll marks every local vertex active.
func (s *MapStore) ActivateAll() {
	for v := range s.adj {
		s.active[v] = struct{}{}
	}
}

// Copies calls fn for every stored edge copy until fn returns false.
func (s *MapStore) Copies(fn func(EdgeCopy) bool) {
	for v, a := range s.adj {
		for _, w := range a.out {
			if !fn(EdgeCopy{Src: v, Dst: w, Dir: Out}) {
				return
			}
		}
		for _, u := range a.in {
			if !fn(EdgeCopy{Src: u, Dst: v, Dir: In}) {
				return
			}
		}
	}
}

// MemoryBytes estimates the store's heap footprint, using the same
// accounting rules as Store.MemoryBytes so the bytes/edge comparison is
// apples-to-apples: map entry overhead per vertex plus vector capacity.
// O(V), reference-path only.
func (s *MapStore) MemoryBytes() uint64 {
	const (
		mapEntryBytes = 48 // key + pointer + bucket overhead
		adjBytes      = 48 // adjacency struct (two slice headers) + header
		setBytes      = 16
	)
	b := uint64(len(s.adj)) * (mapEntryBytes + adjBytes)
	for _, a := range s.adj {
		b += uint64(cap(a.out)+cap(a.in)) * 8
	}
	b += uint64(len(s.active)+len(s.pinEmpty)) * setBytes
	return b
}

// BytesPerEdge returns the estimated bytes per stored edge copy.
func (s *MapStore) BytesPerEdge() float64 {
	copies := s.NumEdgeCopies()
	if copies == 0 {
		return 0
	}
	return float64(s.MemoryBytes()) / float64(copies)
}

// String summarizes the store for logs.
func (s *MapStore) String() string {
	return fmt.Sprintf("mapstore{v=%d out=%d in=%d active=%d}",
		len(s.adj), s.numOut, s.numIn, len(s.active))
}

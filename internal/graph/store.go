package graph

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Store is a single agent's dynamic graph slice, stored as sealed CSR
// runs plus a delta-log tail. It is not safe for concurrent use: agents
// are single-threaded event loops. The one exception is Compactions,
// which is an atomic so metric scrapes may read it from other goroutines.
//
// Layout: every locally present vertex has a slot recording its sealed
// neighbour runs — contiguous, sorted spans of the store-wide sealedOut /
// sealedIn arrays written by the last compaction — plus an optional tail
// of edges inserted or deleted since. Iteration merges the sealed run
// (minus the tail's delete log) with the tail's sorted inserts, so
// neighbours always come back in ascending ID order no matter how the
// edges are split between generations.
type Store struct {
	slots     map[VertexID]slotRec
	sealedOut []VertexID
	sealedIn  []VertexID

	numOut int
	numIn  int

	// tailOps counts live tail entries (adds + delete-log records) and
	// deadSealed counts sealed entries that are logically deleted or
	// unreachable (dropped vertices); their sum against the sealed size
	// drives compaction.
	tailOps    int
	tailRecs   int
	deadSealed int

	// compactMin is the tail size below which compaction never triggers;
	// above it, compaction fires when tail+dead exceeds sealed/4.
	compactMin  int
	compactions atomic.Uint64

	active   map[VertexID]struct{}
	pinEmpty map[VertexID]struct{} // vertices kept alive despite zero local edges
}

// slotRec locates one vertex's sealed runs. The tail pointer is nil for
// the (steady-state) majority of vertices untouched since the last
// compaction, so per-vertex overhead is one map entry, not a heap record
// with two growing vectors.
type slotRec struct {
	outStart, outLen uint32
	inStart, inLen   uint32
	tail             *tailRec
}

// tailRec is the delta log of one recently-mutated vertex. All four
// lists are kept sorted ascending; adds are disjoint from the sealed run,
// dels are a subset of it.
type tailRec struct {
	outAdd, outDel []VertexID
	inAdd, inDel   []VertexID
}

func (t *tailRec) empty() bool {
	return len(t.outAdd) == 0 && len(t.outDel) == 0 && len(t.inAdd) == 0 && len(t.inDel) == 0
}

func (t *tailRec) size() int {
	return len(t.outAdd) + len(t.outDel) + len(t.inAdd) + len(t.inDel)
}

// DefaultCompactMin is the minimum tail size (adds + delete-log records,
// store-wide) before a compaction can trigger.
const DefaultCompactMin = 1024

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		slots:      make(map[VertexID]slotRec),
		compactMin: DefaultCompactMin,
		active:     make(map[VertexID]struct{}),
		pinEmpty:   make(map[VertexID]struct{}),
	}
}

// SetCompactMin overrides the minimum tail size that triggers compaction
// (tests and benchmarks force small thresholds to exercise generation
// boundaries).
func (s *Store) SetCompactMin(n int) {
	if n < 1 {
		n = 1
	}
	s.compactMin = n
}

// NumVertices returns the count of vertices with at least one local edge
// copy (or a pin).
func (s *Store) NumVertices() int { return len(s.slots) }

// NumOutEdges returns the number of locally stored out-copies.
func (s *Store) NumOutEdges() int { return s.numOut }

// NumInEdges returns the number of locally stored in-copies.
func (s *Store) NumInEdges() int { return s.numIn }

// NumEdgeCopies returns out+in copies, the agent's memory-relevant load.
func (s *Store) NumEdgeCopies() int { return s.numOut + s.numIn }

// Compactions returns the number of tail-fold compactions performed. It
// is safe to call from any goroutine (metric scrapes).
func (s *Store) Compactions() uint64 { return s.compactions.Load() }

// sealedOutRun returns the (possibly partially deleted) sealed out run.
func (s *Store) sealedOutRun(rec slotRec) []VertexID {
	return s.sealedOut[rec.outStart : rec.outStart+rec.outLen]
}

func (s *Store) sealedInRun(rec slotRec) []VertexID {
	return s.sealedIn[rec.inStart : rec.inStart+rec.inLen]
}

// sortedContains reports whether v is in the ascending list.
func sortedContains(list []VertexID, v VertexID) bool {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= v })
	return i < len(list) && list[i] == v
}

// sortedInsert inserts v keeping ascending order; reports false if
// already present.
func sortedInsert(list []VertexID, v VertexID) ([]VertexID, bool) {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= v })
	if i < len(list) && list[i] == v {
		return list, false
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = v
	return list, true
}

// sortedRemove deletes v preserving order; reports whether it was there.
func sortedRemove(list []VertexID, v VertexID) ([]VertexID, bool) {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= v })
	if i >= len(list) || list[i] != v {
		return list, false
	}
	copy(list[i:], list[i+1:])
	return list[:len(list)-1], true
}

// tailOf attaches (or returns) the vertex's tail record. The caller must
// re-store rec into s.slots if it was newly attached.
func (s *Store) tailOf(rec *slotRec) *tailRec {
	if rec.tail == nil {
		rec.tail = &tailRec{}
		s.tailRecs++
	}
	return rec.tail
}

// Pin keeps vertex v in the store even with zero local edges, used for
// replica bookkeeping of split vertices that currently hold no edge copy.
func (s *Store) Pin(v VertexID) {
	if _, ok := s.slots[v]; !ok {
		s.slots[v] = slotRec{}
	}
	s.pinEmpty[v] = struct{}{}
}

// Unpin removes the pin; the vertex is dropped if it has no edges left.
func (s *Store) Unpin(v VertexID) {
	delete(s.pinEmpty, v)
	if rec, ok := s.slots[v]; ok {
		s.maybeDrop(v, rec)
	}
}

// liveDegrees returns the vertex's live out/in degrees under rec.
func liveDegrees(rec slotRec) (out, in int) {
	out, in = int(rec.outLen), int(rec.inLen)
	if t := rec.tail; t != nil {
		out += len(t.outAdd) - len(t.outDel)
		in += len(t.inAdd) - len(t.inDel)
	}
	return out, in
}

// maybeDrop removes a vertex left with no live copies and no pin. Sealed
// entries it still occupies become dead weight until the next compaction.
func (s *Store) maybeDrop(v VertexID, rec slotRec) {
	out, in := liveDegrees(rec)
	if out != 0 || in != 0 {
		return
	}
	if _, pinned := s.pinEmpty[v]; pinned {
		return
	}
	if t := rec.tail; t != nil {
		s.tailOps -= t.size()
		s.tailRecs--
		// Sealed entries not already delete-logged join the dead count.
		s.deadSealed += int(rec.outLen) - len(t.outDel) + int(rec.inLen) - len(t.inDel)
	} else {
		s.deadSealed += int(rec.outLen) + int(rec.inLen)
	}
	delete(s.slots, v)
	delete(s.active, v)
}

// AddEdge stores a copy of edge (u,v) in direction dir. For dir==Out the
// copy lives under u (v added to u's out-set); for dir==In it lives
// under v (u added to v's in-set). Duplicate copies are ignored; the
// return reports whether the store changed.
func (s *Store) AddEdge(u, v VertexID, dir Dir) bool {
	key, nbr := u, v
	if dir == In {
		key, nbr = v, u
	}
	rec := s.slots[key]
	var sealed []VertexID
	if dir == Out {
		sealed = s.sealedOutRun(rec)
	} else {
		sealed = s.sealedInRun(rec)
	}
	t := rec.tail
	if sortedContains(sealed, nbr) {
		// Present in the sealed run unless delete-logged; a logged delete
		// is revived by erasing the log entry.
		if t == nil {
			return false
		}
		del := &t.outDel
		if dir == In {
			del = &t.inDel
		}
		var revived bool
		if *del, revived = sortedRemove(*del, nbr); !revived {
			return false
		}
		s.tailOps--
		s.deadSealed--
	} else {
		add := func() *[]VertexID {
			t = s.tailOf(&rec)
			if dir == Out {
				return &t.outAdd
			}
			return &t.inAdd
		}()
		var inserted bool
		if *add, inserted = sortedInsert(*add, nbr); !inserted {
			return false
		}
		s.tailOps++
	}
	if dir == Out {
		s.numOut++
	} else {
		s.numIn++
	}
	s.slots[key] = rec
	s.maybeCompact()
	return true
}

// RemoveEdge deletes the stored copy of (u,v) in direction dir, reporting
// whether it existed. Vertices left with no copies (and no pin) are
// dropped so memory tracks the live graph.
func (s *Store) RemoveEdge(u, v VertexID, dir Dir) bool {
	key, nbr := u, v
	if dir == In {
		key, nbr = v, u
	}
	rec, ok := s.slots[key]
	if !ok {
		return false
	}
	t := rec.tail
	if t != nil {
		// A tail-added edge is removed from the add log directly.
		add := &t.outAdd
		if dir == In {
			add = &t.inAdd
		}
		if list, removed := sortedRemove(*add, nbr); removed {
			*add = list
			s.tailOps--
			if dir == Out {
				s.numOut--
			} else {
				s.numIn--
			}
			s.slots[key] = rec
			s.maybeDrop(key, rec)
			return true
		}
	}
	var sealed []VertexID
	if dir == Out {
		sealed = s.sealedOutRun(rec)
	} else {
		sealed = s.sealedInRun(rec)
	}
	if !sortedContains(sealed, nbr) {
		return false
	}
	t = s.tailOf(&rec)
	del := &t.outDel
	if dir == In {
		del = &t.inDel
	}
	var logged bool
	if *del, logged = sortedInsert(*del, nbr); !logged {
		return false // already delete-logged
	}
	s.tailOps++
	s.deadSealed++
	if dir == Out {
		s.numOut--
	} else {
		s.numIn--
	}
	s.slots[key] = rec
	s.maybeDrop(key, rec)
	s.maybeCompact()
	return true
}

// maybeCompact folds the tail into a fresh sealed generation once the
// delta log (plus dead sealed entries) outgrows max(compactMin,
// sealed/4) — geometric growth keeps amortized insert cost O(1) while
// bounding tail scans and dead space to a constant fraction.
func (s *Store) maybeCompact() {
	threshold := (len(s.sealedOut) + len(s.sealedIn)) / 4
	if threshold < s.compactMin {
		threshold = s.compactMin
	}
	if s.tailOps+s.deadSealed >= threshold {
		s.Compact()
	}
}

// Compact rebuilds the sealed arrays from the current live edge set,
// clearing every tail. Pinned zero-edge vertices survive with empty runs.
func (s *Store) Compact() {
	newOut := make([]VertexID, 0, s.numOut)
	newIn := make([]VertexID, 0, s.numIn)
	for v, rec := range s.slots {
		outStart := uint32(len(newOut))
		newOut = mergeRun(newOut, s.sealedOutRun(rec), rec.tail, false)
		inStart := uint32(len(newIn))
		newIn = mergeRun(newIn, s.sealedInRun(rec), rec.tail, true)
		s.slots[v] = slotRec{
			outStart: outStart, outLen: uint32(len(newOut)) - outStart,
			inStart: inStart, inLen: uint32(len(newIn)) - inStart,
		}
	}
	s.sealedOut, s.sealedIn = newOut, newIn
	s.tailOps, s.tailRecs, s.deadSealed = 0, 0, 0
	s.compactions.Add(1)
}

// mergeRun appends the live merge of one sealed run and its tail (sealed
// minus delete log, plus adds, ascending) onto dst.
func mergeRun(dst, sealed []VertexID, t *tailRec, in bool) []VertexID {
	var add, del []VertexID
	if t != nil {
		if in {
			add, del = t.inAdd, t.inDel
		} else {
			add, del = t.outAdd, t.outDel
		}
	}
	si, ai, di := 0, 0, 0
	for si < len(sealed) || ai < len(add) {
		if si < len(sealed) {
			sv := sealed[si]
			for di < len(del) && del[di] < sv {
				di++
			}
			if di < len(del) && del[di] == sv {
				si++
				continue
			}
			if ai < len(add) && add[ai] < sv {
				dst = append(dst, add[ai])
				ai++
				continue
			}
			dst = append(dst, sv)
			si++
			continue
		}
		dst = append(dst, add[ai])
		ai++
	}
	return dst
}

// Apply applies one change in direction dir, marking the locally stored
// endpoint active if the topology changed.
func (s *Store) Apply(c Change, dir Dir) bool {
	var changed bool
	if c.Action == Insert {
		changed = s.AddEdge(c.Src, c.Dst, dir)
	} else {
		changed = s.RemoveEdge(c.Src, c.Dst, dir)
	}
	if changed {
		if dir == Out {
			s.MarkActive(c.Src)
		} else {
			s.MarkActive(c.Dst)
		}
	}
	return changed
}

// ApplyBatch applies a change batch in direction dir and returns the
// affected-vertex frontier: the sorted set of locally stored endpoints
// whose topology actually changed. The frontier seeds the first superstep
// of a delta-driven recompute (§4.3: "only vertices directly modified in
// the batch are activated"); the same vertices are also marked active, so
// agent-side incremental runs keep working through TakeActive.
func (s *Store) ApplyBatch(b Batch, dir Dir) []VertexID {
	if len(b) == 0 {
		return nil
	}
	touched := make(map[VertexID]struct{}, len(b))
	for _, c := range b {
		if s.Apply(c, dir) {
			if dir == Out {
				touched[c.Src] = struct{}{}
			} else {
				touched[c.Dst] = struct{}{}
			}
		}
	}
	if len(touched) == 0 {
		return nil
	}
	frontier := make([]VertexID, 0, len(touched))
	for v := range touched {
		frontier = append(frontier, v)
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
	return frontier
}

// HasVertex reports whether v has any local presence.
func (s *Store) HasVertex(v VertexID) bool {
	_, ok := s.slots[v]
	return ok
}

// Cursor is a zero-allocation neighbour iterator: a value type holding
// the sealed run, delete log, and add log of one vertex in one direction.
// It must not be held across store mutations (compaction and tail edits
// invalidate the aliased slices), the same lifetime rule the old
// neighbour-slice accessors had.
type Cursor struct {
	sealed, del, add []VertexID
	si, di, ai       int
}

// Next returns the next neighbour in ascending ID order.
func (c *Cursor) Next() (VertexID, bool) {
	for c.si < len(c.sealed) {
		sv := c.sealed[c.si]
		for c.di < len(c.del) && c.del[c.di] < sv {
			c.di++
		}
		if c.di < len(c.del) && c.del[c.di] == sv {
			c.si++
			continue
		}
		if c.ai < len(c.add) && c.add[c.ai] < sv {
			v := c.add[c.ai]
			c.ai++
			return v, true
		}
		c.si++
		return sv, true
	}
	if c.ai < len(c.add) {
		v := c.add[c.ai]
		c.ai++
		return v, true
	}
	return 0, false
}

// OutCursor returns a cursor over v's locally stored out-neighbours.
func (s *Store) OutCursor(v VertexID) Cursor {
	rec, ok := s.slots[v]
	if !ok {
		return Cursor{}
	}
	c := Cursor{sealed: s.sealedOutRun(rec)}
	if t := rec.tail; t != nil {
		c.del, c.add = t.outDel, t.outAdd
	}
	return c
}

// InCursor returns a cursor over v's locally stored in-neighbours.
func (s *Store) InCursor(v VertexID) Cursor {
	rec, ok := s.slots[v]
	if !ok {
		return Cursor{}
	}
	c := Cursor{sealed: s.sealedInRun(rec)}
	if t := rec.tail; t != nil {
		c.del, c.add = t.inDel, t.inAdd
	}
	return c
}

// ForEachOut calls fn for every locally stored out-neighbour of v in
// ascending ID order until fn returns false.
func (s *Store) ForEachOut(v VertexID, fn func(VertexID) bool) {
	for it := s.OutCursor(v); ; {
		w, ok := it.Next()
		if !ok || !fn(w) {
			return
		}
	}
}

// ForEachIn calls fn for every locally stored in-neighbour of v in
// ascending ID order until fn returns false.
func (s *Store) ForEachIn(v VertexID, fn func(VertexID) bool) {
	for it := s.InCursor(v); ; {
		u, ok := it.Next()
		if !ok || !fn(u) {
			return
		}
	}
}

// Degree returns v's local out- and in-degrees in O(1).
func (s *Store) Degree(v VertexID) (out, in int) {
	rec, ok := s.slots[v]
	if !ok {
		return 0, 0
	}
	return liveDegrees(rec)
}

// OutDegree returns the local out-degree of v.
func (s *Store) OutDegree(v VertexID) int {
	out, _ := s.Degree(v)
	return out
}

// InDegree returns the local in-degree of v.
func (s *Store) InDegree(v VertexID) int {
	_, in := s.Degree(v)
	return in
}

// AppendOut appends v's out-neighbours (ascending) onto buf — the
// slice-materializing convenience for tests and snapshots; hot paths use
// cursors.
func (s *Store) AppendOut(v VertexID, buf []VertexID) []VertexID {
	s.ForEachOut(v, func(w VertexID) bool {
		buf = append(buf, w)
		return true
	})
	return buf
}

// AppendIn appends v's in-neighbours (ascending) onto buf.
func (s *Store) AppendIn(v VertexID, buf []VertexID) []VertexID {
	s.ForEachIn(v, func(u VertexID) bool {
		buf = append(buf, u)
		return true
	})
	return buf
}

// Vertices calls fn for every locally present vertex until fn returns
// false. Iteration order is unspecified.
func (s *Store) Vertices(fn func(VertexID) bool) {
	for v := range s.slots {
		if !fn(v) {
			return
		}
	}
}

// VertexList returns all locally present vertices, sorted (deterministic
// iteration for tests and checkpoints).
func (s *Store) VertexList() []VertexID {
	out := make([]VertexID, 0, len(s.slots))
	for v := range s.slots {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MarkActive adds v to the active set consumed by the next superstep.
func (s *Store) MarkActive(v VertexID) { s.active[v] = struct{}{} }

// IsActive reports whether v is in the active set.
func (s *Store) IsActive(v VertexID) bool {
	_, ok := s.active[v]
	return ok
}

// ClearActive removes v from the active set.
func (s *Store) ClearActive(v VertexID) { delete(s.active, v) }

// ActiveCount returns the size of the active set — between batch boundary
// and run start this is the frontier the next delta recompute seeds from.
func (s *Store) ActiveCount() int { return len(s.active) }

// TakeActive returns the current active set sorted and resets it. Dynamic
// algorithms seed each batch's first superstep from this set (§4.3: "only
// vertices directly modified in the batch are activated").
func (s *Store) TakeActive() []VertexID {
	if len(s.active) == 0 {
		return nil
	}
	out := make([]VertexID, 0, len(s.active))
	for v := range s.active {
		out = append(out, v)
	}
	s.active = make(map[VertexID]struct{})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ActivateAll marks every local vertex active (static from-scratch runs).
func (s *Store) ActivateAll() {
	for v := range s.slots {
		s.active[v] = struct{}{}
	}
}

// Copies calls fn for every stored edge copy until fn returns false.
// Agents use it to re-evaluate ownership after a directory change.
func (s *Store) Copies(fn func(EdgeCopy) bool) {
	for v := range s.slots {
		stop := false
		s.ForEachOut(v, func(w VertexID) bool {
			if !fn(EdgeCopy{Src: v, Dst: w, Dir: Out}) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
		s.ForEachIn(v, func(u VertexID) bool {
			if !fn(EdgeCopy{Src: u, Dst: v, Dir: In}) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// MemoryBytes estimates the store's heap footprint in O(1) from
// maintained counters: sealed array capacity, per-slot map overhead, and
// tail records. It is an estimate (Go map internals are approximated at
// 48 bytes per slot entry), but a consistent one — the bytes/edge metric
// and the MapStore comparison use the same accounting rules.
func (s *Store) MemoryBytes() uint64 {
	const (
		slotBytes    = 48  // map entry (key+slotRec) incl. bucket overhead
		tailRecBytes = 112 // tailRec struct + object header
		setBytes     = 16  // active/pin set entry
	)
	b := uint64(cap(s.sealedOut)+cap(s.sealedIn)) * 8
	b += uint64(len(s.slots)) * slotBytes
	b += uint64(s.tailRecs) * tailRecBytes
	// Tail entry slack: sorted-insert slices run near capacity; 2x covers
	// append doubling.
	b += uint64(s.tailOps) * 16
	b += uint64(len(s.active)+len(s.pinEmpty)) * setBytes
	return b
}

// BytesPerEdge returns the estimated bytes per stored edge copy.
func (s *Store) BytesPerEdge() float64 {
	copies := s.NumEdgeCopies()
	if copies == 0 {
		return 0
	}
	return float64(s.MemoryBytes()) / float64(copies)
}

// String summarizes the store for logs.
func (s *Store) String() string {
	return fmt.Sprintf("store{v=%d out=%d in=%d sealed=%d tail=%d dead=%d active=%d compactions=%d}",
		len(s.slots), s.numOut, s.numIn,
		len(s.sealedOut)+len(s.sealedIn), s.tailOps, s.deadSealed,
		len(s.active), s.compactions.Load())
}

// Checkpoint export hooks. A durable snapshot serializes the store as two
// independently content-addressed streams: the raw sealed runs (stable
// between compactions, so the segment dedups across checkpoints) and the
// delta-log tail. Both iterate in sorted vertex order so identical store
// content always produces identical bytes.

// SealedCopies calls fn for every entry of the raw sealed CSR runs —
// including entries the tail's delete log has cancelled — until fn
// returns false. Replaying TailCopies on top of a store rebuilt from
// SealedCopies reproduces the live edge set exactly.
func (s *Store) SealedCopies(fn func(EdgeCopy) bool) {
	for _, v := range s.VertexList() {
		rec := s.slots[v]
		for _, w := range s.sealedOutRun(rec) {
			if !fn(EdgeCopy{Src: v, Dst: w, Dir: Out}) {
				return
			}
		}
		for _, u := range s.sealedInRun(rec) {
			if !fn(EdgeCopy{Src: u, Dst: v, Dir: In}) {
				return
			}
		}
	}
}

// TailCopies calls fn for every delta-log entry — adds and deletes
// recorded since the current sealed generation — until fn returns false.
// deleted=true entries cancel a sealed entry; deleted=false entries are
// inserts not yet folded into a sealed run.
func (s *Store) TailCopies(fn func(c EdgeCopy, deleted bool) bool) {
	for _, v := range s.VertexList() {
		rec := s.slots[v]
		if rec.tail == nil {
			continue
		}
		for _, w := range rec.tail.outAdd {
			if !fn(EdgeCopy{Src: v, Dst: w, Dir: Out}, false) {
				return
			}
		}
		for _, w := range rec.tail.outDel {
			if !fn(EdgeCopy{Src: v, Dst: w, Dir: Out}, true) {
				return
			}
		}
		for _, u := range rec.tail.inAdd {
			if !fn(EdgeCopy{Src: u, Dst: v, Dir: In}, false) {
				return
			}
		}
		for _, u := range rec.tail.inDel {
			if !fn(EdgeCopy{Src: u, Dst: v, Dir: In}, true) {
				return
			}
		}
	}
}

// ActiveList returns the active set sorted without consuming it (unlike
// TakeActive), so checkpoints can record activation non-destructively.
func (s *Store) ActiveList() []VertexID {
	if len(s.active) == 0 {
		return nil
	}
	out := make([]VertexID, 0, len(s.active))
	for v := range s.active {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PinnedList returns the pinned-empty vertices sorted, so a restored
// store keeps split-vertex replica pins alive.
func (s *Store) PinnedList() []VertexID {
	if len(s.pinEmpty) == 0 {
		return nil
	}
	out := make([]VertexID, 0, len(s.pinEmpty))
	for v := range s.pinEmpty {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

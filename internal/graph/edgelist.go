package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// Edge is a directed edge in an edge list (the at-rest interchange format,
// matching the "EL Size" column of the paper's Table 2).
type Edge struct {
	Src VertexID
	Dst VertexID
}

// EdgeList is an in-memory edge list used by generators, baselines, and
// file I/O. It may contain duplicates until Dedupe is called.
type EdgeList []Edge

// MaxVertex returns the largest vertex ID referenced, or 0 for empty lists.
func (el EdgeList) MaxVertex() VertexID {
	var max VertexID
	for _, e := range el {
		if e.Src > max {
			max = e.Src
		}
		if e.Dst > max {
			max = e.Dst
		}
	}
	return max
}

// NumVertices returns the count of distinct vertex IDs referenced.
func (el EdgeList) NumVertices() int {
	seen := make(map[VertexID]struct{}, len(el))
	for _, e := range el {
		seen[e.Src] = struct{}{}
		seen[e.Dst] = struct{}{}
	}
	return len(seen)
}

// Sort orders edges by (Src, Dst).
func (el EdgeList) Sort() {
	sort.Slice(el, func(i, j int) bool {
		if el[i].Src != el[j].Src {
			return el[i].Src < el[j].Src
		}
		return el[i].Dst < el[j].Dst
	})
}

// Dedupe sorts and removes duplicate edges in place, returning the
// shortened list.
func (el EdgeList) Dedupe() EdgeList {
	if len(el) == 0 {
		return el
	}
	el.Sort()
	out := el[:1]
	for _, e := range el[1:] {
		if e != out[len(out)-1] {
			out = append(out, e)
		}
	}
	return out
}

// Symmetrized returns a new edge list containing both directions of every
// edge, deduplicated. The paper symmetrizes inputs for WCC (§4.7, fixing
// the Blogel undirected bug).
func (el EdgeList) Symmetrized() EdgeList {
	out := make(EdgeList, 0, 2*len(el))
	for _, e := range el {
		out = append(out, e)
		if e.Src != e.Dst {
			out = append(out, Edge{Src: e.Dst, Dst: e.Src})
		}
	}
	return out.Dedupe()
}

// Changes converts the list into an insertion batch.
func (el EdgeList) Changes() Batch {
	b := make(Batch, len(el))
	for i, e := range el {
		b[i] = Change{Action: Insert, Src: e.Src, Dst: e.Dst}
	}
	return b
}

// Degrees returns the out-degree of every vertex (by ID, dense up to
// MaxVertex). Useful for generators and sketch validation.
func (el EdgeList) Degrees() []int {
	if len(el) == 0 {
		return nil
	}
	deg := make([]int, el.MaxVertex()+1)
	for _, e := range el {
		deg[e.Src]++
	}
	return deg
}

// WriteTo writes the list as "src dst\n" text, the universal edge-list
// interchange the paper's datasets ship in. It reports bytes written.
func (el EdgeList) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for _, e := range el {
		c, err := fmt.Fprintf(bw, "%d %d\n", e.Src, e.Dst)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadEdgeList parses "src dst" lines, skipping blank lines and lines
// starting with '#' or '%' (SNAP and Matrix Market comment styles).
func ReadEdgeList(r io.Reader) (EdgeList, error) {
	var el EdgeList
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		txt := sc.Text()
		if len(txt) == 0 || txt[0] == '#' || txt[0] == '%' {
			continue
		}
		var u, v uint64
		if _, err := fmt.Sscanf(txt, "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: %w", line, err)
		}
		el = append(el, Edge{Src: VertexID(u), Dst: VertexID(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return el, nil
}

// CSR is a compressed sparse row view of a static graph, the
// representation the Blogel- and GAP-style baselines iterate over (the
// paper notes CSR "is faster than our flat hash maps (but do not easily
// support dynamic graphs)", §4.7).
type CSR struct {
	// N is the number of vertices (IDs 0..N-1).
	N int
	// OutOffsets has length N+1; out-neighbours of v are
	// OutAdj[OutOffsets[v]:OutOffsets[v+1]].
	OutOffsets []int64
	OutAdj     []VertexID
	// InOffsets/InAdj mirror the structure for in-edges.
	InOffsets []int64
	InAdj     []VertexID
}

// BuildCSR constructs a CSR over vertex IDs 0..max(el). Duplicate edges
// are kept as-is (callers Dedupe first if needed).
func BuildCSR(el EdgeList) *CSR {
	n := 0
	if len(el) > 0 {
		n = int(el.MaxVertex()) + 1
	}
	c := &CSR{
		N:          n,
		OutOffsets: make([]int64, n+1),
		OutAdj:     make([]VertexID, len(el)),
		InOffsets:  make([]int64, n+1),
		InAdj:      make([]VertexID, len(el)),
	}
	for _, e := range el {
		c.OutOffsets[e.Src+1]++
		c.InOffsets[e.Dst+1]++
	}
	for i := 0; i < n; i++ {
		c.OutOffsets[i+1] += c.OutOffsets[i]
		c.InOffsets[i+1] += c.InOffsets[i]
	}
	outPos := make([]int64, n)
	inPos := make([]int64, n)
	for _, e := range el {
		c.OutAdj[c.OutOffsets[e.Src]+outPos[e.Src]] = e.Dst
		outPos[e.Src]++
		c.InAdj[c.InOffsets[e.Dst]+inPos[e.Dst]] = e.Src
		inPos[e.Dst]++
	}
	return c
}

// BuildCSRFromStore builds a CSR over IDs 0..max from a store's Out
// copies, plus a presence bitmap covering every edge endpoint and pinned
// vertex. Unlike BuildCSR it needs no edge-list materialization or sort:
// cursors yield each vertex's neighbours pre-sorted, and the fill pass
// walks vertices in ascending ID order so the in-adjacency of every
// vertex also comes out sorted — the output is deterministic regardless
// of the store's compaction timing.
func BuildCSRFromStore(s *Store) (*CSR, []bool) {
	verts := s.VertexList()
	var maxV VertexID
	m := 0
	for _, v := range verts {
		if v > maxV {
			maxV = v
		}
		s.ForEachOut(v, func(w VertexID) bool {
			if w > maxV {
				maxV = w
			}
			m++
			return true
		})
	}
	n := 0
	if len(verts) > 0 {
		n = int(maxV) + 1
	}
	c := &CSR{
		N:          n,
		OutOffsets: make([]int64, n+1),
		OutAdj:     make([]VertexID, m),
		InOffsets:  make([]int64, n+1),
		InAdj:      make([]VertexID, m),
	}
	present := make([]bool, n)
	for _, v := range verts {
		present[v] = true
		s.ForEachOut(v, func(w VertexID) bool {
			c.OutOffsets[v+1]++
			c.InOffsets[w+1]++
			present[w] = true
			return true
		})
	}
	for i := 0; i < n; i++ {
		c.OutOffsets[i+1] += c.OutOffsets[i]
		c.InOffsets[i+1] += c.InOffsets[i]
	}
	outPos := make([]int64, n)
	inPos := make([]int64, n)
	for _, v := range verts {
		s.ForEachOut(v, func(w VertexID) bool {
			c.OutAdj[c.OutOffsets[v]+outPos[v]] = w
			outPos[v]++
			c.InAdj[c.InOffsets[w]+inPos[w]] = v
			inPos[w]++
			return true
		})
	}
	return c, present
}

// Out returns v's out-neighbours.
func (c *CSR) Out(v VertexID) []VertexID {
	return c.OutAdj[c.OutOffsets[v]:c.OutOffsets[v+1]]
}

// In returns v's in-neighbours.
func (c *CSR) In(v VertexID) []VertexID {
	return c.InAdj[c.InOffsets[v]:c.InOffsets[v+1]]
}

// OutDegree returns v's out-degree.
func (c *CSR) OutDegree(v VertexID) int {
	return int(c.OutOffsets[v+1] - c.OutOffsets[v])
}

// NumEdges returns the number of directed edges.
func (c *CSR) NumEdges() int { return len(c.OutAdj) }

// Dynamic-wcc maintains weakly connected components on a continuously
// changing graph, comparing ElGA's incremental maintenance against a
// snapshot-recompute baseline — the workload of the paper's Figure 15.
package main

import (
	"fmt"
	"log"
	"time"

	"elga/internal/algorithm"
	"elga/internal/baseline/bsp"
	"elga/internal/baseline/snapshot"
	"elga/internal/client"
	"elga/internal/cluster"
	"elga/internal/gen"
	"elga/internal/graph"
)

func main() {
	const batches, batchSize = 10, 50

	// The paper's change model: remove a random sample from a static
	// graph, then stream it back in as batches.
	full := gen.RMAT(13, 80_000, gen.Graph500Params(), 21)
	_, insertions, remaining := gen.SampleBatch(full, batches*batchSize, 5)

	c, err := cluster.New(cluster.Options{Agents: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.Load(remaining); err != nil {
		log.Fatal(err)
	}

	// Initial from-scratch computation.
	st, err := c.Run(client.RunSpec{Algo: "wcc", FromScratch: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial wcc: %d supersteps over %d edges\n", st.Steps, len(remaining))

	// Snapshot baseline over the same stream.
	snap := snapshot.New(remaining, 8)
	snap.RunFromScratch(algorithm.WCC{}, bsp.Options{Workers: 8})

	fmt.Printf("%-8s  %-12s  %-6s  %-12s  %s\n", "batch", "elga", "iters", "snapshot", "speedup")
	for b := 0; b < batches; b++ {
		batch := graph.Batch(insertions[b*batchSize : (b+1)*batchSize])

		start := time.Now()
		if err := c.ApplyBatch(batch); err != nil {
			log.Fatal(err)
		}
		run, err := c.Run(client.RunSpec{Algo: "wcc"}) // incremental
		if err != nil {
			log.Fatal(err)
		}
		elga := time.Since(start)

		res := snap.ApplyBatch(algorithm.WCC{}, batch, bsp.Options{Workers: 8})
		fmt.Printf("%-8d  %-12s  %-6d  %-12s  %.1fx\n",
			b, elga.Round(time.Microsecond), run.Steps,
			res.Elapsed.Round(time.Microsecond),
			res.Elapsed.Seconds()/elga.Seconds())
	}

	// Verify both systems agree on a few component labels.
	for _, v := range []graph.VertexID{1, 100, 1000} {
		w, found, err := c.QueryWord(v)
		if err != nil {
			log.Fatal(err)
		}
		if found {
			fmt.Printf("component(%d) = %d\n", v, w)
		}
	}
}

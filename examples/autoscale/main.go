// Autoscale drives an ElGA cluster with a step-function client query load
// and lets the reactive autoscaler (EMA of query rate / per-agent
// capacity, with a cooldown) resize the cluster — the paper's Figure 18.
package main

import (
	"fmt"
	"log"
	"time"

	"elga/internal/autoscale"
	"elga/internal/client"
	"elga/internal/cluster"
	"elga/internal/gen"
	"elga/internal/graph"
)

func main() {
	el := gen.RMAT(12, 50_000, gen.Graph500Params(), 31)
	c, err := cluster.New(cluster.Options{Agents: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.Load(el); err != nil {
		log.Fatal(err)
	}
	if _, err := c.Run(client.RunSpec{Algo: "pagerank", MaxSteps: 5, FromScratch: true}); err != nil {
		log.Fatal(err)
	}
	cl, err := c.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// The reactive policy of §3.4.3: EMA of the query rate, one agent
	// per 500 q/s, decisions at most every 400ms.
	as := autoscale.New(150*time.Millisecond, autoscale.Policy{
		PerAgentCapacity: 500, Min: 1, Max: 8, Cooldown: 400 * time.Millisecond,
	}, c.NumAgents())

	// Step-function load, emulating sudden workload changes.
	phases := []struct {
		name  string
		ticks int
		qps   float64
	}{
		{"calm", 8, 300},
		{"burst", 10, 3000},
		{"cooldown", 10, 400},
	}
	tick := 60 * time.Millisecond
	fmt.Printf("%-10s  %-8s  %-8s  %-7s  %s\n", "phase", "load", "ema", "target", "agents")
	for _, ph := range phases {
		for i := 0; i < ph.ticks; i++ {
			tickStart := time.Now()
			// Issue the tick's queries (the metric source).
			n := int(ph.qps * tick.Seconds())
			for q := 0; q < n; q++ {
				if _, _, err := cl.Query(graph.VertexID(q % 1024)); err != nil {
					log.Fatal(err)
				}
			}
			// Pace to the nominal tick so EMA time constants and the
			// cooldown behave as configured.
			if rest := tick - time.Since(tickStart); rest > 0 {
				time.Sleep(rest)
			}
			now := time.Now()
			as.Observe(now, ph.qps)
			d := as.Decide(now)
			if d.Applied {
				for c.NumAgents() < d.Target {
					if _, err := c.AddAgent(); err != nil {
						log.Fatal(err)
					}
				}
				for c.NumAgents() > d.Target {
					if err := c.RemoveAgent(c.NumAgents() - 1); err != nil {
						log.Fatal(err)
					}
				}
			}
			fmt.Printf("%-10s  %-8.0f  %-8.0f  %-7d  %d\n",
				ph.name, ph.qps, as.Load(), d.Target, c.NumAgents())
		}
	}
	fmt.Println("\nautoscaler decision history:")
	for _, d := range as.History() {
		if d.Applied {
			fmt.Printf("  scaled to %d (smoothed load %.0f q/s)\n", d.Target, d.Load)
		}
	}
}

// Quickstart boots a complete in-process ElGA cluster, streams a small
// dynamic graph into it, runs PageRank and weakly connected components,
// and queries results — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"elga/internal/client"
	"elga/internal/cluster"
	"elga/internal/gen"
	"elga/internal/graph"
)

func main() {
	// 1. Boot a cluster: a DirectoryMaster, one Directory, four Agents.
	c, err := cluster.New(cluster.Options{Agents: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()
	fmt.Printf("cluster up: %d agents\n", c.NumAgents())

	// 2. Stream a graph in. ElGA treats the graph as a change stream;
	// Load streams insertions and seals the batch (sketch merged,
	// ownership rebalanced).
	el := gen.RMAT(12, 40_000, gen.Graph500Params(), 7)
	if err := c.Load(el); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d edges (%d vertices)\n", len(el), el.NumVertices())

	// 3. Run PageRank for ten supersteps.
	st, err := c.Run(client.RunSpec{Algo: "pagerank", MaxSteps: 10, FromScratch: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pagerank: %d supersteps, %s per superstep\n", st.Steps, st.PerStep())

	// 4. Query some ranks through a client proxy (the low-latency path).
	for _, v := range []graph.VertexID{0, 1, 2} {
		rank, found, err := c.Query(v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  rank[%d] = %.6g (found=%v)\n", v, rank, found)
	}

	// 5. The graph keeps changing: apply a batch and maintain components
	// incrementally (only batch-touched vertices recompute).
	if err := c.ApplyBatch(graph.Batch{
		{Action: graph.Insert, Src: 1, Dst: 4000},
		{Action: graph.Insert, Src: 4000, Dst: 4001},
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := c.Run(client.RunSpec{Algo: "wcc", FromScratch: true}); err != nil {
		log.Fatal(err)
	}
	comp, _, err := c.QueryWord(4001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wcc: component(4001) = %d\n", comp)

	// 6. Elasticity: add an agent; edges rebalance with minimal movement.
	if _, err := c.AddAgent(); err != nil {
		log.Fatal(err)
	}
	if err := c.Seal(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scaled to %d agents; per-agent edge copies:\n", c.NumAgents())
	for id, n := range c.EdgeCounts() {
		fmt.Printf("  agent %d: %d\n", id, n)
	}
}

// Elastic-pagerank scales a running PageRank computation up in the middle
// of the run and back down afterwards — the paper's Figure 17 scenario.
// The directory pauses the superstep barrier at a safe point, edges (and
// vertex state) migrate by consistent hashing, and the computation resumes
// on the larger cluster.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"elga/internal/client"
	"elga/internal/cluster"
	"elga/internal/gen"
)

func main() {
	const startAgents, peakAgents = 2, 6

	el := gen.PreferentialAttachment(20_000, 8, 99)
	c, err := cluster.New(cluster.Options{Agents: startAgents})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.Load(el); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running pagerank on %d edges with %d agents, scaling to %d mid-run\n",
		len(el), startAgents, peakAgents)

	// The operator scales the cluster while the run is in flight; the
	// coordinator integrates the new agents between supersteps.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(20 * time.Millisecond)
		for i := startAgents; i < peakAgents; i++ {
			if _, err := c.AddAgent(); err != nil {
				log.Println("scale-up:", err)
				return
			}
			fmt.Printf("  + agent joined (now %d)\n", c.NumAgents())
		}
	}()

	start := time.Now()
	st, err := c.Run(client.RunSpec{Algo: "pagerank", MaxSteps: 12, FromScratch: true})
	wg.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed %d supersteps in %s across the scale-up\n",
		st.Steps, time.Since(start).Round(time.Millisecond))
	for i, d := range st.StepTimes {
		fmt.Printf("  step %2d: %s\n", i, d.Round(time.Microsecond))
	}

	// Verify the answer survived the migration: total rank mass is <= 1
	// and the hub has a high rank.
	hub, _, err := c.Query(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rank[hub 0] = %.6g\n", hub)

	// Scale back down for cost savings once the computation is done.
	for c.NumAgents() > startAgents {
		if err := c.RemoveAgent(c.NumAgents() - 1); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  - agent left (now %d)\n", c.NumAgents())
	}
	if err := c.Seal(); err != nil {
		log.Fatal(err)
	}
	hub2, _, err := c.Query(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rank[hub 0] after scale-down = %.6g (state preserved: %v)\n",
		hub2, hub == hub2)
}

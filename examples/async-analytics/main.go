// Async-analytics contrasts ElGA's two execution modes on the same
// cluster and graph: synchronous supersteps with global barriers, and the
// asynchronous engine where vertices process messages the moment they
// arrive and the coordinator detects quiescence from message counters
// (paper §3.2). Both must produce identical component labels.
package main

import (
	"fmt"
	"log"
	"time"

	"elga/internal/client"
	"elga/internal/cluster"
	"elga/internal/gen"
	"elga/internal/graph"
)

func main() {
	el := gen.RMAT(13, 100_000, gen.Graph500Params(), 77)
	c, err := cluster.New(cluster.Options{Agents: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.Load(el); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d edges, %d vertices, 4 agents\n", len(el), el.NumVertices())

	probe := []graph.VertexID{1, 5, 40, 1000}

	// Synchronous (BSP) weakly connected components.
	start := time.Now()
	syncStats, err := c.Run(client.RunSpec{Algo: "wcc", FromScratch: true})
	if err != nil {
		log.Fatal(err)
	}
	syncWall := time.Since(start)
	syncLabels := map[graph.VertexID]uint64{}
	for _, v := range probe {
		w, _, err := c.QueryWord(v)
		if err != nil {
			log.Fatal(err)
		}
		syncLabels[v] = w
	}
	fmt.Printf("sync  wcc: %2d supersteps, %8s wall\n", syncStats.Steps, syncWall.Round(time.Millisecond))

	// Asynchronous: no supersteps, no barriers; termination by
	// double-probe quiescence detection.
	start = time.Now()
	asyncStats, err := c.Run(client.RunSpec{Algo: "wcc", Async: true, FromScratch: true})
	if err != nil {
		log.Fatal(err)
	}
	asyncWall := time.Since(start)
	fmt.Printf("async wcc: barrier-free, %8s wall (converged=%v)\n",
		asyncWall.Round(time.Millisecond), asyncStats.Converged)

	// The monotone fixpoint is execution-order independent: labels match.
	allMatch := true
	for _, v := range probe {
		w, _, err := c.QueryWord(v)
		if err != nil {
			log.Fatal(err)
		}
		match := w == syncLabels[v]
		allMatch = allMatch && match
		fmt.Printf("  component(%4d): sync=%d async=%d match=%v\n", v, syncLabels[v], w, match)
	}
	if !allMatch {
		log.Fatal("sync and async disagree — monotonicity violated")
	}
	fmt.Println("sync and async reached the same fixpoint")

	// Incremental async maintenance: insert a bridge, re-run async.
	if err := c.ApplyBatch(graph.Batch{{Action: graph.Insert, Src: 1, Dst: 7000}}); err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	if _, err := c.Run(client.RunSpec{Algo: "wcc", Async: true}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incremental async maintenance after one insert: %s\n",
		time.Since(start).Round(time.Microsecond))
}

module elga

go 1.22

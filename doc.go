// Package elga is a from-scratch Go reproduction of ElGA, the elastic and
// scalable dynamic graph analysis system of Gabert, Sancak, Özkaya, Pınar
// and Çatalyürek (SC '21).
//
// The system lives under internal/: the consistent-hash + count-min-sketch
// edge partitioning core, the shared-nothing Agents/Directories/Streamers/
// ClientProxies, the vertex-centric algorithm layer, the baselines the
// paper compares against, and an experiment harness that regenerates every
// table and figure of the paper's evaluation. Start with
// internal/cluster (the in-process deployment harness), the examples/
// directory, and the elga / elga-bench / elga-gen commands.
//
// The benchmarks in bench_test.go exercise the core operation behind each
// paper figure; `go run ./cmd/elga-bench all` reproduces the full tables.
package elga
